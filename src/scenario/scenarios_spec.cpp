// netsim-fuzz: the standing config-fuzz differential harness (ISSUE 9).
// Generates seed-deterministic random *valid* generic specs, serializes
// each through util::JsonWriter, round-trips it through the real spec
// parser (util::ParseJson + ParseScenarioSpec — the same path `wsnctl
// run --file` takes), and interprets it twice: once on the scenario
// executor and once on a single-threaded twin.  Every config asserts
//
//   * packet conservation on every replication (built into the generic
//     interpreter),
//   * field-for-field equality against the full-recompute oracle twin
//     (shapes that exercise the incremental repair paths),
//   * convergence of the simulated first death to the closed-form
//     analytic estimator (the lossless flat steady shape), and
//   * byte-identical rendered output across thread counts.
//
// Everything is deterministic per (seed, index): any failure reproduces
// with the printed one-line `--seed=S --start=I --count=1` invocation.
#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/subproc.hpp"
#include "util/table.hpp"

namespace wsn::scenario {
namespace {

double UniformIn(util::Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * util::UniformDouble(rng);
}

std::size_t SizeIn(util::Rng& rng, std::size_t lo, std::size_t hi) {
  return lo + static_cast<std::size_t>(util::UniformBelow(rng, hi - lo + 1));
}

bool Coin(util::Rng& rng) { return util::UniformBelow(rng, 2) == 0; }

/// The five fuzzed shapes.  Each exercises a different verification
/// surface; together they cover flat/clustered x fault-free/faulty plus
/// the analytic anchor.
enum class Shape : std::size_t {
  kFlat = 0,          ///< flat grid, optional loss/burstiness; oracle
  kFlatFaults,        ///< + node churn, jams, sink outages; oracle
  kClustered,         ///< leach/static rotation; oracle (head assign)
  kClusteredFaults,   ///< clustered + churn; oracle
  kAnalyticAnchor,    ///< lossless flat steady; analytic convergence
};

/// Serialize one random-but-valid generic spec.  Writing JSON text (not
/// a GenericSpec) is the point: the fuzzer exercises the same reader,
/// validator and interpreter a user's --file does.
std::string GenerateSpecText(util::Rng& rng) {
  const auto shape = static_cast<Shape>(util::UniformBelow(rng, 5));
  const bool analytic = shape == Shape::kAnalyticAnchor;
  const bool clustered =
      shape == Shape::kClustered || shape == Shape::kClusteredFaults;
  const bool faults =
      shape == Shape::kFlatFaults || shape == Shape::kClusteredFaults;

  const std::size_t cols = SizeIn(rng, 2, 6);
  const std::size_t rows = SizeIn(rng, 2, 6);
  const double spacing = UniformIn(rng, 10.0, 25.0);
  const double hop = spacing * UniformIn(rng, 1.5, 3.0);
  const double horizon = analytic ? 4000.0 : UniformIn(rng, 200.0, 600.0);
  const double rate =
      analytic ? UniformIn(rng, 1.0, 2.0) : UniformIn(rng, 0.2, 2.0);
  const double battery = analytic ? UniformIn(rng, 0.02, 0.04)
                                  : UniformIn(rng, 0.02, 0.08);

  util::JsonWriter w(0);
  w.BeginObject();
  w.Key("study").String("generic");
  w.Key("topology").BeginObject();
  w.Key("cols").UInt(cols);
  w.Key("rows").UInt(rows);
  w.Key("spacing").Number(spacing);
  w.Key("hop").Number(hop);
  w.EndObject();
  w.Key("node").BeginObject();
  w.Key("rate").Number(rate);
  w.Key("battery_mah").Number(battery);
  w.EndObject();

  if (analytic) {
    w.Key("traffic").BeginObject();
    w.Key("kind").String("steady");
    w.EndObject();
    w.Key("routing").BeginObject();
    w.Key("rerouting").Bool(false);
    w.EndObject();
  } else {
    if (Coin(rng)) {
      w.Key("traffic").BeginObject();
      w.Key("kind").String(Coin(rng) ? "bursty" : "steady");
      w.EndObject();
    }
    if (Coin(rng)) {
      w.Key("mac").BeginObject();
      w.Key("p_loss").Number(UniformIn(rng, 0.0, 0.3));
      w.Key("max_retries").UInt(SizeIn(rng, 1, 5));
      w.EndObject();
    }
  }

  if (clustered) {
    w.Key("cluster").BeginObject();
    w.Key("protocol").String(Coin(rng) ? "leach" : "static");
    w.Key("head_fraction").Number(UniformIn(rng, 0.1, 0.3));
    w.Key("round_s").Number(horizon /
                            static_cast<double>(SizeIn(rng, 5, 10)));
    w.Key("aggregation").UInt(SizeIn(rng, 1, 6));
    w.EndObject();
  }

  if (faults) {
    w.Key("faults").BeginObject();
    w.Key("crash_rate").Number(UniformIn(rng, 5.0e-4, 5.0e-3));
    w.Key("outage_s").Number(UniformIn(rng, 20.0, horizon / 3.0));
    if (Coin(rng)) {
      w.Key("jam_windows").UInt(SizeIn(rng, 1, 2));
      w.Key("jam_radius").Number(UniformIn(rng, 30.0, 60.0));
      w.Key("jam_p_loss").Number(UniformIn(rng, 0.2, 0.8));
    }
    if (Coin(rng)) {
      w.Key("sink_outages").UInt(1);
    }
    w.EndObject();
  }

  // Non-analytic shapes occasionally sweep a knob so multi-cell
  // interpretation (axis validation, cell labels, per-cell verification)
  // stays under fuzz too.
  if (!analytic && Coin(rng)) {
    const bool sweep_outage = faults && Coin(rng);
    w.Key("sweep").BeginArray();
    w.BeginObject();
    w.Key("key").String(sweep_outage ? "faults.outage_s" : "node.rate");
    w.Key("values").BeginArray();
    for (int k = 0; k < 2; ++k) {
      w.Number(sweep_outage ? UniformIn(rng, 20.0, horizon / 4.0)
                            : UniformIn(rng, 0.2, 2.0));
    }
    w.EndArray();
    w.EndObject();
    w.EndArray();
  }

  w.Key("run").BeginObject();
  w.Key("horizon_s").Number(horizon);
  if (analytic) w.Key("stop_at").String("first_death");
  w.Key("replications").UInt(SizeIn(rng, 2, 3));
  w.Key("seed").UInt(2008 + util::UniformBelow(rng, 1000));
  w.EndObject();

  w.Key("output").BeginObject();
  w.Key("columns").BeginArray();
  w.String("generated");
  w.String("delivered");
  w.String("dropped");
  w.String("delivery_ratio");
  if (faults) {
    w.String("crashes");
    w.String("recoveries");
    w.String("healed");
  }
  w.String("first_death_s");
  w.String("in_flight");
  w.String("conserved");
  w.EndArray();
  w.EndObject();

  w.Key("verify").BeginObject();
  if (analytic) {
    w.Key("analytic").Bool(true);
  } else {
    w.Key("oracle").Bool(true);
  }
  w.EndObject();
  w.EndObject();
  return w.Str();
}

/// The heavy half of one fuzz config: interpret the spec on `executor`,
/// then on a single-threaded twin, and byte-compare the rendered JSON.
/// The interpreter asserts conservation and the oracle/analytic checks
/// inside each run; identical renders pin thread-count determinism.
void RunDifferential(const ScenarioContext& ctx, const ScenarioSpec& spec,
                     util::ParallelExecutor& executor, std::size_t index,
                     const std::string& repro) {
  ScenarioContext exec_ctx;
  exec_ctx.args = ctx.args;
  exec_ctx.executor = &executor;
  exec_ctx.obs = ctx.obs;
  ResultSet first = [&] {
    try {
      return RunSpec(exec_ctx, spec);
    } catch (const std::exception& e) {
      throw util::Error("netsim-fuzz: config " + std::to_string(index) +
                        " (" + e.what() + "); repro: " + repro);
    }
  }();
  util::ParallelExecutor serial(1);
  ScenarioContext serial_ctx;
  serial_ctx.args = ctx.args;
  serial_ctx.executor = &serial;
  const ResultSet second = RunSpec(serial_ctx, spec);
  const std::string first_render = first.Render(OutputFormat::kJson);
  const std::string second_render = second.Render(OutputFormat::kJson);
  if (first_render != second_render) {
    throw util::Error("netsim-fuzz: config " + std::to_string(index) +
                      " rendered differently on the executor vs a "
                      "single thread; repro: " + repro);
  }
}

ResultSet RunNetsimFuzz(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const std::size_t count = args.GetCount("count", 20, 1);
  const std::size_t start = args.GetCount("start", 0);
  const std::uint64_t seed = args.GetCount("seed", 2008);
  const double config_deadline_s = args.GetDouble("config-deadline", 0.0);
  util::Require(config_deadline_s >= 0.0, "--config-deadline must be >= 0");

  ResultSet results(
      "config fuzz: random valid specs through the differential harness");
  results.SetMeta("configs", std::to_string(count));
  results.SetMeta("start", std::to_string(start));
  results.SetMeta("seed", std::to_string(seed));

  ResultTable& table = results.AddTable(
      "configs", {"config", "shape", "spec bytes", "cells", "replications",
                  "verified", "threads-identical"});

  const util::Rng master(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t index = start + i;
    const std::string repro = "wsnctl run netsim-fuzz --seed=" +
                              std::to_string(seed) +
                              " --start=" + std::to_string(index) +
                              " --count=1";
    util::Rng rng = master.MakeStream(index);
    const std::string text = GenerateSpecText(rng);

    ScenarioSpec spec;
    try {
      spec = ParseScenarioSpec(text);
    } catch (const std::exception& e) {
      // A generated spec failing validation is a fuzzer bug: the
      // generator only emits knobs the schema accepts.
      throw util::Error("netsim-fuzz: config " + std::to_string(index) +
                        " failed validation (" + e.what() +
                        "); repro: " + repro);
    }

    if (config_deadline_s > 0.0) {
      // Deadline fence (--config-deadline): the whole differential runs
      // in a forked worker so a hung config is killed and reported with
      // the same one-line repro as any other failure, instead of
      // stalling the entire fuzz sweep (docs/robustness.md).  The
      // worker builds its own executor — the parent's pool threads do
      // not survive fork().
      const std::size_t width = ctx.Executor().ThreadCount();
      util::WorkerLimits limits;
      limits.deadline_s = config_deadline_s;
      const util::WorkerResult result = util::RunInWorker(
          [&ctx, &spec, index, &repro, width] {
            util::ParallelExecutor executor(width);
            ScenarioContext worker_ctx;
            worker_ctx.args = ctx.args;
            worker_ctx.executor = &executor;
            // obs stays off: a forked worker cannot contribute to the
            // parent's session.
            RunDifferential(worker_ctx, spec, executor, index, repro);
            return std::string();
          },
          limits);
      if (!result.Ok()) {
        std::string what = "netsim-fuzz: config " + std::to_string(index) +
                           " failed in its worker (" + result.Describe() +
                           ")";
        // Exceptions relayed from the child already carry the repro.
        if (result.detail.find("repro:") == std::string::npos) {
          what += "; repro: " + repro;
        }
        throw util::Error(what);
      }
    } else {
      RunDifferential(ctx, spec, *ctx.executor, index, repro);
    }

    // Shape + effort recap for the table, read back out of the spec.
    const GenericSpec& g = spec.generic;
    const bool faults = g.crash_rate_hz > 0.0;
    const std::string shape =
        g.verify_analytic
            ? "analytic-anchor"
            : std::string(g.clustered ? "clustered" : "flat") +
                  (faults ? "+faults" : "");
    std::size_t cells = 1;
    for (const SweepAxis& axis : g.sweep) cells *= axis.values.size();
    table.AddRow({std::to_string(index), shape,
                  std::to_string(text.size()), std::to_string(cells),
                  std::to_string(g.replications),
                  g.verify_analytic ? "conservation + analytic"
                                    : "conservation + oracle",
                  "yes"});
  }

  results.AddNote(
      "every config is generated, validated, interpreted and verified "
      "deterministically from (seed, index): rerun any single config "
      "with --seed=<seed> --start=<config> --count=1.  A config only "
      "reaches its table row after packet conservation held on every "
      "replication, the oracle/analytic check passed, and the executor "
      "and single-thread renders compared byte-identical.");
  return results;
}

const ScenarioRegistrar reg_netsim_fuzz(MakeScenario(
    "netsim-fuzz",
    "config fuzz: seed-deterministic random specs through the "
    "conservation / oracle / analytic / thread-identity differential "
    "harness",
    "extension (standing config-fuzz differential testing)",
    {
        {"count", "N", "20", "configs to generate and verify (>= 1)"},
        {"start", "N", "0", "first config index (repro: --start=i --count=1)"},
        {"seed", "N", "2008", "master RNG seed (non-negative)"},
        {"config-deadline", "S", "0",
         "wall-clock deadline per config in a forked worker; a hang is "
         "killed and reported with its repro line (0 = off)"},
    },
    RunNetsimFuzz));

}  // namespace
}  // namespace wsn::scenario
