#include "scenario/common.hpp"

#include <cstdint>

#include "obs/session.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace wsn::scenario {

core::CpuParams PaperParams() {
  core::CpuParams p;
  p.arrival_rate = 1.0;
  p.service_rate = 10.0;
  p.power_down_threshold = 0.1;
  p.power_up_delay = 0.001;
  return p;
}

core::EvalConfig EvalConfigFromArgs(const util::CliArgs& args) {
  core::EvalConfig cfg;
  cfg.sim_time = args.GetDouble("sim-time", 1000.0);
  util::Require(cfg.sim_time > 0.0, "flag --sim-time must be positive");
  cfg.replications = args.GetCount("replications", 24, 1);
  cfg.seed = static_cast<std::uint64_t>(args.GetCount("seed", 2008));
  cfg.threads = 1;  // parallelism lives in the scenario's executor
  return cfg;
}

std::size_t SweepPointsFromArgs(const util::CliArgs& args) {
  return args.GetCount("points", 11, 2);
}

std::vector<util::FlagSpec> CommonEvalFlags() {
  return {
      {"sim-time", "S", "1000", "simulated horizon per replication (s)"},
      {"replications", "R", "24", "independent replications (>= 1)"},
      {"seed", "N", "2008", "master RNG seed (non-negative)"},
  };
}

util::FlagSpec PointsFlag() {
  return {"points", "K", "11", "sweep resolution over the PDT grid (>= 2)"};
}

netsim::ReplicationConfig NetsimRepConfig(const util::CliArgs& args,
                                          std::size_t default_reps) {
  netsim::ReplicationConfig rep;
  rep.replications = args.GetCount("replications", default_reps, 1);
  rep.seed = static_cast<std::uint64_t>(args.GetCount("seed", 2008));
  return rep;
}

std::string ObservedCell(std::size_t observed, std::size_t total) {
  return std::to_string(observed) + "/" + std::to_string(total) + " reps";
}

std::string MetricCell(const netsim::MetricSummary& metric, int precision) {
  if (metric.observed == 0) return "n/a";
  return util::FormatInterval(metric.ci.mean, metric.ci.half_width, precision);
}

void ApplyObs(const ScenarioContext& ctx, netsim::NetSimConfig& config) {
  if (ctx.obs == nullptr) return;
  config.obs = ctx.obs->MakeConfig();
}

void ContributeObs(const ScenarioContext& ctx,
                   const netsim::ReplicationSummary& summary) {
  if (ctx.obs == nullptr) return;
  ctx.obs->Contribute(summary.metrics, summary.trace);
}

}  // namespace wsn::scenario
