// Registered design-exploration scenarios, ported from the standalone
// example mains: duty-cycle trade-off exploration, the six-way model
// comparison, and static whole-network lifetime estimation.
#include <iterator>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {
namespace {

// Power-management design exploration: for a given workload, sweep the
// Power Down Threshold and report the energy/latency trade-off.  Uses
// the fast closed-form Markov model for the sweep and cross-checks the
// chosen operating point against the Petri net.
ResultSet RunDutyCycle(const ScenarioContext& ctx) {
  core::CpuParams params;
  params.arrival_rate = ctx.Args().GetDouble("lambda", 0.2);
  params.service_rate = 10.0;
  params.power_up_delay = ctx.Args().GetDouble("pud", 0.05);
  const std::size_t points = ctx.Args().GetCount("points", 13, 2);

  ResultSet results("Duty-cycle exploration: energy/latency trade-off over "
                    "the Power Down Threshold");
  results.SetMeta("lambda", util::FormatFixed(params.arrival_rate, 3) + "/s");
  results.SetMeta("pud", util::FormatFixed(params.power_up_delay, 3) + " s");

  const auto pxa = energy::Pxa271();
  const core::MarkovCpuModel markov;

  struct PointRow {
    double pdt;
    double energy;
    double latency;
    double standby_pct;
    double idle_pct;
  };
  const std::vector<PointRow> rows =
      ctx.Executor().Map(points, [&](std::size_t i) {
        const double pdt =
            3.0 * static_cast<double>(i) / static_cast<double>(points - 1);
        core::CpuParams p = params;
        p.power_down_threshold = pdt;
        const auto eval = markov.Evaluate(p);
        return PointRow{pdt, core::EnergyJoules(eval, pxa, 1000.0),
                        eval.mean_latency, eval.shares.standby * 100.0,
                        eval.shares.idle * 100.0};
      });

  ResultTable& table = results.AddTable(
      "trade-off", {"PDT(s)", "energy(J/1000s)", "mean latency(s)",
                    "standby%", "idle%"});
  double best_pdt = 0.0;
  double best_cost = 1e300;
  for (const PointRow& row : rows) {
    table.AddNumericRow(
        {row.pdt, row.energy, row.latency, row.standby_pct, row.idle_pct}, 3);
    // Simple scalarized objective: energy plus a latency penalty.
    const double cost = row.energy + 200.0 * row.latency;
    if (cost < best_cost) {
      best_cost = cost;
      best_pdt = row.pdt;
    }
  }
  results.AddNote("Chosen operating point (min energy + 200 J/s x latency): "
                  "PDT = " +
                  util::FormatFixed(best_pdt, 3) + " s");

  // Cross-check the chosen point with the Petri net (the paper's point:
  // trust the PN when deterministic delays matter).
  core::EvalConfig cfg;
  cfg.sim_time = 2000.0;
  cfg.replications = 12;
  cfg.threads = 1;
  const core::PetriNetCpuModel pn(cfg);
  core::CpuParams chosen = params;
  chosen.power_down_threshold = best_pdt;
  results.AddNote(
      "Cross-check at chosen point:  markov energy = " +
      util::FormatFixed(
          core::EnergyJoules(markov.Evaluate(chosen), pxa, 1000.0), 2) +
      " J,  petri-net energy = " +
      util::FormatFixed(core::EnergyJoules(pn.Evaluate(chosen), pxa, 1000.0),
                        2) +
      " J");
  return results;
}

// Model comparison across the paper's parameter plane: the three paper
// models side by side plus the extended solvers this library adds.
ResultSet RunModelComparison(const ScenarioContext& ctx) {
  core::CpuParams base;
  base.power_up_delay = ctx.Args().GetDouble("pud", 0.3);

  core::EvalConfig cfg;
  cfg.sim_time = ctx.Args().GetDouble("sim-time", 2000.0);
  cfg.replications = ctx.Args().GetCount("replications", 16, 1);
  cfg.threads = 1;

  const auto grid = core::PaperPdtGrid(ctx.Args().GetCount("points", 6, 2));
  const auto pxa = energy::Pxa271();

  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const core::StagesMarkovCpuModel stages(20);
  const core::PetriSolverCpuModel solver(20);
  const core::DspnExactCpuModel exact;
  const core::CpuEnergyModel* models[] = {&sim,    &markov, &pn,
                                          &stages, &solver, &exact};

  ResultSet results("Model comparison: six evaluation methods");
  results.SetMeta("pud", util::FormatFixed(base.power_up_delay, 3) + " s");
  results.SetMeta("sim-time", util::FormatFixed(cfg.sim_time, 0) + " s");
  results.SetMeta("replications", std::to_string(cfg.replications));

  // One job per (point, model) cell of the comparison grid.
  const std::size_t n_models = std::size(models);
  const std::vector<double> idle_cells = ctx.Executor().Map(
      grid.size() * n_models, [&](std::size_t job) {
        core::CpuParams p = base;
        p.power_down_threshold = grid[job / n_models];
        return models[job % n_models]->Evaluate(p).shares.idle;
      });

  ResultTable& idle = results.AddTable(
      "idle-share", {"PDT(s)", "DES sim", "supp.var Markov", "PN token game",
                     "stages CTMC k=20", "PN solver k=20", "DSPN exact"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<double> row{grid[i]};
    for (std::size_t m = 0; m < n_models; ++m) {
      row.push_back(idle_cells[i * n_models + m]);
    }
    idle.AddNumericRow(row, 4);
  }

  core::CpuParams p = base;
  p.power_down_threshold = 0.5;
  ResultTable& etab = results.AddTable("energy-at-pdt-0.5",
                                       {"model", "energy(J)"});
  for (const auto* model : models) {
    etab.AddRow({model->Name(),
                 util::FormatFixed(
                     core::EnergyJoules(model->Evaluate(p), pxa, 1000.0), 3)});
  }
  return results;
}

// WSN application (the paper's motivating scenario): static sensor-node
// and network lifetime estimation for a grid deployment.
ResultSet RunWsnLifetime(const ScenarioContext& ctx) {
  node::NetworkConfig cfg;
  cfg.node.cpu.arrival_rate = ctx.Args().GetDouble("rate", 0.5);
  cfg.node.cpu.service_rate = 10.0;
  cfg.node.cpu.power_down_threshold = 0.1;
  cfg.node.cpu.power_up_delay = 0.001;
  const std::string cpu = ctx.Args().GetString("cpu", "pxa271");
  cfg.node.cpu_power = cpu == "msp430"   ? energy::Msp430()
                       : cpu == "atmega" ? energy::Atmega128L()
                                         : energy::Pxa271();
  cfg.node.sample_bits = 256;
  cfg.node.listen_duty_cycle = 0.01;
  cfg.node.battery_mah = 2500.0;
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = ctx.Args().GetDouble("hop", 50.0);

  const auto positions =
      node::MakeGrid(ctx.Args().GetCount("cols", 4, 1),
                     ctx.Args().GetCount("rows", 4, 1),
                     ctx.Args().GetDouble("spacing", 30.0));
  const node::Network network(cfg, positions);

  const core::MarkovCpuModel cpu_model;
  const node::NetworkReport report = network.Evaluate(cpu_model);

  ResultSet results("WSN lifetime estimation (static analytic model)");
  results.SetMeta("nodes", std::to_string(positions.size()));
  results.SetMeta("cpu", cfg.node.cpu_power.name);
  results.SetMeta("rate",
                  util::FormatFixed(cfg.node.cpu.arrival_rate, 3) +
                      " samples/s");

  ResultTable& table = results.AddTable(
      "per-node", {"node", "pos", "next-hop", "relay pkts/s",
                   "avg power (mW)", "lifetime (days)"});
  for (const node::NodeReport& n : report.nodes) {
    table.AddRow(
        {std::to_string(n.index),
         "(" + util::FormatFixed(positions[n.index].x, 0) + "," +
             util::FormatFixed(positions[n.index].y, 0) + ")",
         n.next_hop == n.index ? std::string("sink")
                               : std::to_string(n.next_hop),
         util::FormatFixed(n.relay_packets_per_second, 2),
         util::FormatFixed(n.average_power_mw, 3),
         util::FormatFixed(n.lifetime_seconds / 86400.0, 1)});
  }
  results.AddNote(
      "Network lifetime (first node death): " +
      util::FormatFixed(report.network_lifetime_seconds / 86400.0, 1) +
      " days (bottleneck: node " + std::to_string(report.bottleneck_node) +
      ", the relay closest to the sink)");
  return results;
}

const ScenarioRegistrar reg_duty_cycle(MakeScenario(
    "duty-cycle",
    "energy/latency trade-off sweep with a PN cross-check at the optimum",
    "extension (design exploration)",
    {
        {"lambda", "L", "0.2", "job arrival rate (1/s)"},
        {"pud", "D", "0.05", "Power Up Delay (s)"},
        {"points", "K", "13", "sweep resolution over PDT in [0, 3] s"},
    },
    RunDutyCycle));

const ScenarioRegistrar reg_model_comparison(MakeScenario(
    "model-comparison",
    "idle share and energy from all six evaluation methods side by side",
    "extension (paper models + numerical solvers)",
    {
        {"pud", "D", "0.3", "Power Up Delay (s)"},
        {"points", "K", "6", "sweep resolution over the PDT grid (>= 2)"},
        {"sim-time", "S", "2000", "simulated horizon per replication (s)"},
        {"replications", "R", "16", "independent replications (>= 1)"},
    },
    RunModelComparison));

const ScenarioRegistrar reg_wsn_lifetime(MakeScenario(
    "wsn-lifetime",
    "static per-node and network lifetime for a grid deployment",
    "paper Section 5 (motivating application)",
    {
        {"cols", "C", "4", "grid columns"},
        {"rows", "R", "4", "grid rows"},
        {"spacing", "M", "30", "grid spacing (m)"},
        {"rate", "L", "0.5", "per-node sample rate (1/s)"},
        {"hop", "M", "50", "max radio hop range (m)"},
        {"cpu", "NAME", "pxa271", "power table: pxa271, msp430 or atmega"},
    },
    RunWsnLifetime));

}  // namespace
}  // namespace wsn::scenario
