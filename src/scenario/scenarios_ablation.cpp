// Registered ablation scenarios (DESIGN.md abl1/abl2), ported from the
// hand-rolled bench_ablation_* mains.
#include <cmath>
#include <string>
#include <vector>

#include "core/cpu_petri_net.hpp"
#include "core/models.hpp"
#include "petri/simulation.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"

namespace wsn::scenario {
namespace {

double MaxShareError(const core::ModelEvaluation& e,
                     const core::ModelEvaluation& truth) {
  return 100.0 *
         std::max({std::abs(e.shares.standby - truth.shares.standby),
                   std::abs(e.shares.powerup - truth.shares.powerup),
                   std::abs(e.shares.idle - truth.shares.idle),
                   std::abs(e.shares.active - truth.shares.active)});
}

core::CpuParams AblationParams(const ScenarioContext& ctx) {
  core::CpuParams params = PaperParams();
  params.power_down_threshold = ctx.Args().GetDouble("pdt", 0.3);
  params.power_up_delay = ctx.Args().GetDouble("pud", 0.3);
  return params;
}

// DESIGN.md abl1: how well does the method of stages handle the paper's
// deterministic delays?  Sweeps the Erlang stage count k for the stages
// CTMC and the Petri-net stage-expansion solver, against the
// supplementary-variable closed form and the DES ground truth.  k = 1 is
// the naive "constant delay ~ exponential" model.
ResultSet RunAblationStages(const ScenarioContext& ctx) {
  core::EvalConfig cfg = EvalConfigFromArgs(ctx.Args());
  if (!ctx.Args().Has("sim-time")) cfg.sim_time = 4000.0;
  const core::CpuParams params = AblationParams(ctx);

  ResultSet results(
      "Ablation: Erlang-k stage expansion of deterministic delays");
  results.SetMeta("pdt", util::FormatFixed(params.power_down_threshold, 3) +
                             " s");
  results.SetMeta("pud", util::FormatFixed(params.power_up_delay, 3) + " s");
  results.SetMeta("sim-time", util::FormatFixed(cfg.sim_time, 0) + " s");

  const core::SimulationCpuModel sim(cfg);
  const auto truth = sim.Evaluate(params);
  const core::MarkovCpuModel supplementary;
  const core::DspnExactCpuModel dspn_exact;

  results.AddNote("DES ground truth shares: standby=" +
                  util::FormatFixed(truth.shares.standby, 5) + " powerup=" +
                  util::FormatFixed(truth.shares.powerup, 5) + " idle=" +
                  util::FormatFixed(truth.shares.idle, 5) + " active=" +
                  util::FormatFixed(truth.shares.active, 5) +
                  " (95% CI half-width " +
                  util::FormatFixed(truth.share_ci_halfwidth, 5) + ")");
  results.AddNote(
      "Supplementary-variable closed form max |err|: " +
      util::FormatFixed(MaxShareError(supplementary.Evaluate(params), truth),
                        3) +
      " pct points");
  results.AddNote(
      "Exact DSPN solver (embedded chain)  max |err|: " +
      util::FormatFixed(MaxShareError(dspn_exact.Evaluate(params), truth), 3) +
      " pct points (should sit inside the simulation CI)");

  const std::vector<std::size_t> stage_counts = {1, 2, 5, 10, 20, 50};
  struct KRow {
    std::size_t k;
    double stages_err;
    double solver_err;
  };
  // The six (stages CTMC, PN solver) pairs are independent numerical
  // solves — fan them across the executor.
  const std::vector<KRow> rows =
      ctx.Executor().Map(stage_counts.size(), [&](std::size_t i) {
        const std::size_t k = stage_counts[i];
        const core::StagesMarkovCpuModel stages(k);
        const core::PetriSolverCpuModel pn_solver(k);
        return KRow{k, MaxShareError(stages.Evaluate(params), truth),
                    MaxShareError(pn_solver.Evaluate(params), truth)};
      });

  ResultTable& table = results.AddTable(
      "stage-expansion", {"k (stages)", "stages-CTMC max|err| (pp)",
                          "PN-solver max|err| (pp)", "PN states"});
  for (const KRow& row : rows) {
    table.AddRow({std::to_string(row.k), util::FormatFixed(row.stages_err, 3),
                  util::FormatFixed(row.solver_err, 3),
                  std::to_string(row.k)});
  }
  results.AddNote(
      "Expected: error decreases toward the simulation CI as k grows; "
      "k = 1 (naive exponential) is the worst.");
  return results;
}

// DESIGN.md abl2: Petri-net steady-state estimation quality vs simulation
// effort — CI width and bias against the high-accuracy solver reference
// as functions of horizon, warm-up fraction and replication count.
ResultSet RunAblationSteady(const ScenarioContext& ctx) {
  const core::CpuParams params = AblationParams(ctx);

  ResultSet results("Ablation: PN steady-state estimation vs effort");
  results.SetMeta("pdt", util::FormatFixed(params.power_down_threshold, 3) +
                             " s");
  results.SetMeta("pud", util::FormatFixed(params.power_up_delay, 3) + " s");

  // High-fidelity reference: stage-expansion solver with many stages.
  const core::PetriSolverCpuModel reference(60);
  const double ref_idle = reference.Evaluate(params).shares.idle;
  results.AddNote("Reference idle share (k=60 numerical solver): " +
                  util::FormatFixed(ref_idle, 5));

  core::CpuNetLayout layout;
  const petri::PetriNet net = core::BuildCpuPetriNet(params, &layout);

  struct EffortCase {
    double horizon;
    double warmup_frac;
    std::size_t reps;
  };
  const std::vector<EffortCase> cases = {
      {200.0, 0.0, 8},   {1000.0, 0.0, 8},   {1000.0, 0.1, 8},
      {1000.0, 0.0, 32}, {5000.0, 0.1, 8},   {5000.0, 0.1, 32},
      {20000.0, 0.1, 16},
  };
  struct CaseRow {
    double mean;
    double half_width;
  };
  // Each effort point is an independent token-game ensemble.
  const std::vector<CaseRow> rows =
      ctx.Executor().Map(cases.size(), [&](std::size_t i) {
        const EffortCase& c = cases[i];
        petri::SimulationConfig cfg;
        cfg.horizon = c.horizon;
        cfg.warmup = c.horizon * c.warmup_frac;
        cfg.seed = 77;
        const petri::EnsembleResult agg =
            petri::SimulateSpnEnsemble(net, cfg, c.reps);
        // idle = E[#CPU_ON] - E[#Active]; Active is nearly constant, so
        // approximate the idle spread by the CPU_ON spread.
        const double mean = agg.mean_tokens[layout.cpu_on].Mean() -
                            agg.mean_tokens[layout.active].Mean();
        const double hw =
            util::IntervalFromStats(agg.mean_tokens[layout.cpu_on]).half_width;
        return CaseRow{mean, hw};
      });

  ResultTable& table = results.AddTable(
      "effort", {"horizon(s)", "warmup", "reps", "idle-share mean",
                 "95% CI halfwidth", "|bias| (pp)"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.AddRow({util::FormatFixed(cases[i].horizon, 0),
                  util::FormatFixed(cases[i].warmup_frac, 2),
                  std::to_string(cases[i].reps),
                  util::FormatFixed(rows[i].mean, 5),
                  util::FormatFixed(rows[i].half_width, 5),
                  util::FormatFixed(std::abs(rows[i].mean - ref_idle) * 100.0,
                                    3)});
  }
  results.AddNote(
      "Expected: CI half-width shrinks ~1/sqrt(horizon x reps); bias falls "
      "within the CI once the horizon passes ~1000 s, matching the paper's "
      "note that PN estimates need long runs to stabilize.");
  return results;
}

std::vector<util::FlagSpec> OperatingPointFlags() {
  return {
      {"pdt", "T", "0.3", "Power Down Threshold (s)"},
      {"pud", "D", "0.3", "Power Up Delay (s)"},
  };
}

const ScenarioRegistrar reg_ablation_stages(MakeScenario(
    "ablation-stages",
    "Erlang-k stage expansion quality for the paper's deterministic delays",
    "extension (DESIGN.md abl1)",
    [] {
      std::vector<util::FlagSpec> flags = OperatingPointFlags();
      for (util::FlagSpec& f : CommonEvalFlags()) {
        if (f.name == "sim-time") f.default_value = "4000";
        flags.push_back(std::move(f));
      }
      return flags;
    }(),
    RunAblationStages));

const ScenarioRegistrar reg_ablation_steady(MakeScenario(
    "ablation-steady",
    "PN steady-state estimation quality vs simulation effort",
    "extension (DESIGN.md abl2)", OperatingPointFlags(), RunAblationSteady));

}  // namespace
}  // namespace wsn::scenario
