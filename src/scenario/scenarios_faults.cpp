// Registered fault-injection / chaos scenario (ISSUE 8): a crash-rate x
// outage-length sweep of the deterministic fault engine, run flat and
// clustered on the same deployment, with every replication
// differentially verified against its oracle twin.
//
// Each cell runs its replication batch twice:
//   * production — incremental routing repair (flat) / grid head
//     assignment (clustered), the paths that apply RepairAfterDeath and
//     RepairAfterRecovery per fault event;
//   * oracle     — grid-full Recompute after every event (flat) /
//     all-pairs head assignment (clustered).
// The per-replication reports must match field for field (events,
// packet counters, crash/recovery counts, partition and heal instants);
// the scenario hard-fails on any divergence, making every run — and the
// CI chaos job that drives it across a seed matrix — a differential
// test of the incremental repair paths under churn.  The
// packet-conservation invariant (generated == delivered + dropped +
// in-flight) is asserted on every report the same way.
//
// All table columns are deterministic (no wall-clock), so two runs with
// the same flags must produce byte-identical output at any thread
// count; CI cmp-compares --threads=1 against --threads=4.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {
namespace {

std::vector<double> ParsePositiveCsv(const std::string& csv,
                                     const char* flag) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    util::Require(!item.empty(),
                  std::string("flag --") + flag + ": empty entry");
    double parsed = 0.0;
    std::size_t consumed = 0;
    try {
      parsed = std::stod(item, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != item.size() || !(parsed > 0.0)) {
      throw util::InvalidArgument(std::string("flag --") + flag + ": '" +
                                  item + "' is not a positive number");
    }
    values.push_back(parsed);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  util::Require(!values.empty(), std::string("flag --") + flag +
                                     " needs at least one entry");
  return values;
}

/// Near-square grid deployment trimmed to exactly `n` nodes.
std::vector<node::Position> FaultTopology(std::size_t n, double spacing) {
  const std::size_t cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  std::vector<node::Position> positions = node::MakeGrid(cols, rows, spacing);
  positions.resize(n);
  return positions;
}

/// Field-for-field comparison of one replication against its oracle
/// twin.  Every quantity here is deterministic per (seed, replication),
/// so any mismatch is a real divergence between the incremental repair
/// paths and their full-recompute oracle.
void RequireEqualReports(const netsim::NetSimReport& a,
                         const netsim::NetSimReport& b,
                         const std::string& label, std::size_t rep) {
  const auto fail = [&](const char* what) {
    throw util::Error("netsim-faults: " + label +
                      " diverged from its oracle at replication " +
                      std::to_string(rep) + " (" + what + ")");
  };
  if (a.events != b.events) fail("DES events");
  if (a.packets.generated != b.packets.generated) fail("generated");
  if (a.packets.delivered != b.packets.delivered) fail("delivered");
  if (a.packets.forwarded != b.packets.forwarded) fail("forwarded");
  if (a.packets.retransmissions != b.packets.retransmissions) {
    fail("retransmissions");
  }
  if (a.packets.dropped != b.packets.dropped) fail("drops by reason");
  if (a.crashes != b.crashes) fail("crashes");
  if (a.recoveries != b.recoveries) fail("recoveries");
  if (a.first_death_s != b.first_death_s) fail("first death");
  if (a.partition_s != b.partition_s) fail("partition instant");
  if (a.heal_s != b.heal_s) fail("heal instant");
  if (a.in_flight != b.in_flight) fail("in-flight payloads");
  if (a.end_s != b.end_s) fail("end instant");
}

struct CellOutcome {
  std::uint64_t crashes = 0;     ///< summed over replications
  std::uint64_t recoveries = 0;  ///< summed over replications
  std::uint64_t in_flight = 0;   ///< summed over replications
  std::size_t partitioned = 0;   ///< reps that partitioned
  std::size_t healed = 0;        ///< reps whose partition healed
};

ResultSet RunNetsimFaults(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const std::size_t n = args.GetCount("nodes", 144, 2);
  const double spacing = args.GetDouble("spacing", 15.0);
  const double hop = args.GetDouble("hop", 40.0);
  const double rate = args.GetDouble("rate", 0.05);
  const double horizon = args.GetDouble("horizon", 2000.0);
  const std::vector<double> crash_rates =
      ParsePositiveCsv(args.GetString("crash-rates", "0.0002,0.001"),
                       "crash-rates");
  const std::vector<double> outages = ParsePositiveCsv(
      args.GetString("outages", "100,400"), "outages");
  const std::size_t jam_windows = args.GetCount("jam-windows", 2, 0);
  const double jam_radius = args.GetDouble("jam-radius", 45.0);
  const double jam_duration = args.GetDouble("jam-duration", horizon / 10.0);
  const double jam_p_loss = args.GetDouble("jam-ploss", 0.5);
  const std::size_t sink_outages = args.GetCount("sink-outages", 1, 0);
  const double sink_outage_s =
      args.GetDouble("sink-outage", horizon / 10.0);
  netsim::ReplicationConfig rep = NetsimRepConfig(args, 4);
  rep.keep_reports = true;

  ResultSet results(
      "fault injection: node churn, jam windows and sink outages with "
      "differential verification of the incremental repair paths");
  results.SetMeta("nodes", std::to_string(n));
  results.SetMeta("spacing", util::FormatFixed(spacing, 0) + " m");
  results.SetMeta("hop", util::FormatFixed(hop, 0) + " m");
  results.SetMeta("rate", util::FormatFixed(rate, 3) + " /s per node");
  results.SetMeta("horizon", util::FormatFixed(horizon, 0) + " s");
  results.SetMeta("jam-windows", std::to_string(jam_windows));
  results.SetMeta("sink-outages", std::to_string(sink_outages));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& table = results.AddTable(
      "faults",
      {"config", "crash rate (1/s)", "outage (s)", "crashes", "recoveries",
       "delivery ratio", "delivered", "partitioned", "healed", "in flight",
       "conserved"});

  const core::MarkovCpuModel model;
  const auto run_cell = [&](netsim::NetSimConfig cfg,
                            const std::string& label)
      -> std::pair<netsim::ReplicationSummary, CellOutcome> {
    ApplyObs(ctx, cfg);
    netsim::ReplicationSummary summary =
        RunReplications(cfg, model, rep, ctx.Executor());
    ContributeObs(ctx, summary);

    // Oracle twin: identical streams, full recompute after every fault
    // event.  The oracle batch contributes no observability output —
    // it exists only to be compared against.
    netsim::NetSimConfig oracle = cfg;
    oracle.obs = obs::ObsConfig{};
    if (oracle.cluster.protocol == netsim::ClusterProtocolKind::kNone) {
      oracle.routing_update = netsim::RoutingUpdateMode::kFull;
    } else {
      oracle.cluster.assign = netsim::HeadAssignMode::kAllPairs;
    }
    const netsim::ReplicationSummary shadow =
        RunReplications(oracle, model, rep, ctx.Executor());

    CellOutcome out;
    for (std::size_t r = 0; r < summary.reports.size(); ++r) {
      const netsim::NetSimReport& report = summary.reports[r];
      RequireEqualReports(report, shadow.reports[r], label, r);
      if (!report.Conserved()) {
        throw util::Error(
            "netsim-faults: " + label +
            " violated packet conservation at replication " +
            std::to_string(r) + ": generated " +
            std::to_string(report.packets.generated) + " != delivered " +
            std::to_string(report.packets.delivered) + " + dropped " +
            std::to_string(report.packets.TotalDropped()) + " + in flight " +
            std::to_string(report.in_flight));
      }
      out.crashes += report.crashes;
      out.recoveries += report.recoveries;
      out.in_flight += report.in_flight;
      const double inf = std::numeric_limits<double>::infinity();
      if (report.partition_s != inf) ++out.partitioned;
      if (report.heal_s != inf) ++out.healed;
    }
    return {std::move(summary), out};
  };

  for (const double crash_rate : crash_rates) {
    for (const double outage : outages) {
      netsim::NetSimConfig cfg;
      cfg.network.node.cpu.arrival_rate = rate;
      cfg.network.node.cpu.service_rate = 10.0 * std::max(rate, 0.1);
      cfg.network.node.cpu_power = energy::Msp430();
      cfg.network.node.sample_bits = 1024;
      cfg.network.node.listen_duty_cycle = 0.01;
      cfg.network.sink = {0.0, 0.0};
      cfg.network.max_hop_m = hop;
      cfg.positions = FaultTopology(n, spacing);
      cfg.horizon_s = horizon;
      cfg.faults.crash_rate_hz = crash_rate;
      cfg.faults.mean_outage_s = outage;
      cfg.faults.jam_windows = jam_windows;
      cfg.faults.jam_radius_m = jam_radius;
      cfg.faults.jam_duration_s = jam_duration;
      cfg.faults.jam_p_loss = jam_p_loss;
      cfg.faults.sink_outages = sink_outages;
      cfg.faults.sink_outage_s = sink_outage_s;

      const auto add_row = [&](const std::string& mode,
                               const netsim::ReplicationSummary& summary,
                               const CellOutcome& out) {
        table.AddRow({mode + " r=" + util::FormatFixed(crash_rate, 4) +
                          " o=" + util::FormatFixed(outage, 0),
                      util::FormatFixed(crash_rate, 4),
                      util::FormatFixed(outage, 0),
                      std::to_string(out.crashes),
                      std::to_string(out.recoveries),
                      MetricCell(summary.delivery_ratio, 4),
                      MetricCell(summary.delivered, 1),
                      ObservedCell(out.partitioned, summary.replications),
                      ObservedCell(out.healed, summary.replications),
                      std::to_string(out.in_flight), "yes"});
      };

      cfg.routing_update = netsim::RoutingUpdateMode::kIncremental;
      const auto [flat_sum, flat_out] = run_cell(
          cfg, "flat r=" + util::FormatFixed(crash_rate, 4) +
                   " o=" + util::FormatFixed(outage, 0));
      add_row("flat", flat_sum, flat_out);

      netsim::NetSimConfig ccfg = cfg;
      ccfg.cluster.protocol = netsim::ClusterProtocolKind::kLeach;
      ccfg.cluster.head_fraction = 0.1;
      ccfg.cluster.round_s = horizon / 10.0;
      ccfg.cluster.aggregation = 4;
      ccfg.cluster.assign = netsim::HeadAssignMode::kGrid;
      const auto [clu_sum, clu_out] = run_cell(
          ccfg, "clustered r=" + util::FormatFixed(crash_rate, 4) +
                    " o=" + util::FormatFixed(outage, 0));
      add_row("clustered", clu_sum, clu_out);
    }
  }

  results.AddNote(
      "every replication ran twice: the production paths (incremental "
      "routing repair / grid head assignment) against their oracle "
      "(full recompute after every fault event / all-pairs assignment); "
      "the run aborts on any field divergence or packet-conservation "
      "violation, so a completed table doubles as a chaos-differential "
      "pass.  'healed' counts replications whose partition later closed "
      "when a crashed cut vertex recovered.  All columns are "
      "deterministic per seed: rerunning with any --threads value must "
      "produce byte-identical output.");
  return results;
}

const ScenarioRegistrar reg_netsim_faults(MakeScenario(
    "netsim-faults",
    "fault-injection chaos sweep: crash-rate x outage-length churn with "
    "jam windows and sink outages, flat and clustered, differentially "
    "verified against full-recompute oracles",
    "extension (robustness / chaos-differential testing)",
    {
        {"nodes", "N", "144", "deployment size (>= 2)"},
        {"spacing", "M", "15", "grid spacing (m)"},
        {"hop", "M", "40", "max radio hop range (m)"},
        {"rate", "L", "0.05", "per-node report rate (1/s)"},
        {"horizon", "S", "2000", "simulation horizon (s)"},
        {"crash-rates", "CSV", "0.0002,0.001",
         "per-node transient crash rates to sweep (1/s)"},
        {"outages", "CSV", "100,400", "mean outage durations to sweep (s)"},
        {"jam-windows", "N", "2", "regional jam windows per run (0 = none)"},
        {"jam-radius", "M", "45", "jam disc radius (m)"},
        {"jam-duration", "S", "", "jam window length (s); default horizon/10"},
        {"jam-ploss", "P", "0.5", "extra per-attempt loss inside a jam"},
        {"sink-outages", "N", "1", "sink outage windows per run (0 = none)"},
        {"sink-outage", "S", "",
         "sink outage window length (s); default horizon/10"},
        {"replications", "R", "4", "replications per cell (>= 1)"},
        {"seed", "N", "2008", "master RNG seed (non-negative)"},
    },
    RunNetsimFaults));

}  // namespace
}  // namespace wsn::scenario
