// Registered fault-injection / chaos scenario (ISSUE 8): a crash-rate x
// outage-length sweep of the deterministic fault engine, run flat and
// clustered on the same deployment, with every replication
// differentially verified against its oracle twin.  A thin flag-parsing
// wrapper over RunFaultStudy in scenario/studies.{hpp,cpp} — see that
// file for the oracle-twin differential design; the spec interpreter
// (`wsnctl run --file`) drives the same runner.
#include <string>
#include <vector>

#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "scenario/studies.hpp"
#include "util/error.hpp"

namespace wsn::scenario {
namespace {

std::vector<double> ParsePositiveCsv(const std::string& csv,
                                     const char* flag) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    util::Require(!item.empty(),
                  std::string("flag --") + flag + ": empty entry");
    double parsed = 0.0;
    std::size_t consumed = 0;
    try {
      parsed = std::stod(item, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != item.size() || !(parsed > 0.0)) {
      throw util::InvalidArgument(std::string("flag --") + flag + ": '" +
                                  item + "' is not a positive number");
    }
    values.push_back(parsed);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  util::Require(!values.empty(), std::string("flag --") + flag +
                                     " needs at least one entry");
  return values;
}

ResultSet RunNetsimFaults(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  FaultStudyParams p;
  p.nodes = args.GetCount("nodes", 144, 2);
  p.spacing_m = args.GetDouble("spacing", 15.0);
  p.hop_m = args.GetDouble("hop", 40.0);
  p.rate_hz = args.GetDouble("rate", 0.05);
  p.horizon_s = args.GetDouble("horizon", 2000.0);
  p.crash_rates = ParsePositiveCsv(
      args.GetString("crash-rates", "0.0002,0.001"), "crash-rates");
  p.outages =
      ParsePositiveCsv(args.GetString("outages", "100,400"), "outages");
  p.jam_windows = args.GetCount("jam-windows", 2, 0);
  p.jam_radius_m = args.GetDouble("jam-radius", 45.0);
  p.jam_duration_s = args.GetDouble("jam-duration", p.horizon_s / 10.0);
  p.jam_p_loss = args.GetDouble("jam-ploss", 0.5);
  p.sink_outages = args.GetCount("sink-outages", 1, 0);
  p.sink_outage_s = args.GetDouble("sink-outage", p.horizon_s / 10.0);
  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 4);
  p.replications = rep.replications;
  p.seed = rep.seed;
  return RunFaultStudy(ctx, p);
}

const ScenarioRegistrar reg_netsim_faults(MakeScenario(
    "netsim-faults",
    "fault-injection chaos sweep: crash-rate x outage-length churn with "
    "jam windows and sink outages, flat and clustered, differentially "
    "verified against full-recompute oracles",
    "extension (robustness / chaos-differential testing)",
    {
        {"nodes", "N", "144", "deployment size (>= 2)"},
        {"spacing", "M", "15", "grid spacing (m)"},
        {"hop", "M", "40", "max radio hop range (m)"},
        {"rate", "L", "0.05", "per-node report rate (1/s)"},
        {"horizon", "S", "2000", "simulation horizon (s)"},
        {"crash-rates", "CSV", "0.0002,0.001",
         "per-node transient crash rates to sweep (1/s)"},
        {"outages", "CSV", "100,400", "mean outage durations to sweep (s)"},
        {"jam-windows", "N", "2", "regional jam windows per run (0 = none)"},
        {"jam-radius", "M", "45", "jam disc radius (m)"},
        {"jam-duration", "S", "", "jam window length (s); default horizon/10"},
        {"jam-ploss", "P", "0.5", "extra per-attempt loss inside a jam"},
        {"sink-outages", "N", "1", "sink outage windows per run (0 = none)"},
        {"sink-outage", "S", "",
         "sink outage window length (s); default horizon/10"},
        {"replications", "R", "4", "replications per cell (>= 1)"},
        {"seed", "N", "2008", "master RNG seed (non-negative)"},
    },
    RunNetsimFaults));

}  // namespace
}  // namespace wsn::scenario
