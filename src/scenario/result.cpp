#include "scenario/result.hpp"

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace wsn::scenario {

using util::Require;

void ResultTable::AddRow(std::vector<std::string> cells) {
  Require(cells.size() == headers.size(),
          "table '" + name + "': row arity does not match header arity");
  rows.push_back(std::move(cells));
}

void ResultTable::AddNumericRow(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(util::FormatFixed(v, precision));
  AddRow(std::move(formatted));
}

OutputFormat ParseOutputFormat(const std::string& s) {
  if (s == "table" || s == "text") return OutputFormat::kText;
  if (s == "csv") return OutputFormat::kCsv;
  if (s == "json") return OutputFormat::kJson;
  throw util::InvalidArgument("unknown output format '" + s +
                              "' (expected table, csv or json)");
}

ResultSet::ResultSet(std::string scenario_name)
    : scenario_(std::move(scenario_name)) {}

ResultTable& ResultSet::AddTable(std::string name,
                                 std::vector<std::string> headers) {
  Require(!headers.empty(), "table needs at least one column");
  ResultTable table;
  table.name = std::move(name);
  table.headers = std::move(headers);
  tables_.push_back(std::move(table));
  return tables_.back();
}

void ResultSet::AddNote(std::string note) { notes_.push_back(std::move(note)); }

void ResultSet::SetMeta(std::string key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

std::string ResultSet::RenderText() const {
  std::string out;
  if (!scenario_.empty()) {
    out += "=== " + scenario_ + " ===\n";
    for (const auto& [k, v] : meta_) out += k + " = " + v + "\n";
    out += "\n";
  }
  for (const ResultTable& t : tables_) {
    if (!t.name.empty()) out += "-- " + t.name + " --\n";
    util::TextTable tt(t.headers);
    for (const auto& row : t.rows) tt.AddRow(row);
    out += tt.Render();
    out += "\n";
  }
  for (const std::string& note : notes_) out += note + "\n";
  return out;
}

std::string ResultSet::RenderCsv() const {
  std::string out;
  for (const auto& [k, v] : meta_) out += "# meta: " + k + " = " + v + "\n";
  bool first = true;
  for (const ResultTable& t : tables_) {
    if (!first) out += "\n";
    first = false;
    out += "# table: " + t.name + "\n";
    util::TextTable tt(t.headers);
    for (const auto& row : t.rows) tt.AddRow(row);
    out += tt.RenderCsv();
  }
  // Notes ride along as comment lines (every line of a multi-line note
  // prefixed) so no sink loses information — e.g. fig4's --net DOT dump.
  for (const std::string& note : notes_) {
    out += "\n";
    std::string body = note;
    while (!body.empty() && body.back() == '\n') body.pop_back();
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = body.find('\n', start);
      out += "# note: " + body.substr(start, nl - start) + "\n";
      if (nl == std::string::npos) break;
      start = nl + 1;
    }
  }
  return out;
}

std::string ResultSet::RenderJson() const {
  util::JsonWriter w;
  w.BeginObject();
  w.Key("scenario").String(scenario_);
  w.Key("meta").BeginObject();
  for (const auto& [k, v] : meta_) w.Key(k).String(v);
  w.EndObject();
  w.Key("tables").BeginArray();
  for (const ResultTable& t : tables_) {
    w.BeginObject();
    w.Key("name").String(t.name);
    w.Key("headers").BeginArray();
    for (const std::string& h : t.headers) w.String(h);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : t.rows) {
      w.BeginArray();
      for (const std::string& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("notes").BeginArray();
  for (const std::string& note : notes_) w.String(note);
  w.EndArray();
  w.EndObject();
  return w.Str() + "\n";
}

std::string ResultSet::Render(OutputFormat format) const {
  switch (format) {
    case OutputFormat::kText:
      return RenderText();
    case OutputFormat::kCsv:
      return RenderCsv();
    case OutputFormat::kJson:
      return RenderJson();
  }
  throw util::InvalidArgument("unhandled output format");
}

}  // namespace wsn::scenario
