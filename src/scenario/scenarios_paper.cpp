// Registered scenarios for the paper's headline artifacts: Tables 4-5
// (pairwise model deltas over the PDT sweep) and Figures 4-5 (state
// shares / energy vs Power Down Threshold).  These used to be four
// hand-rolled bench_* mains; the sweeps now fan out across the scenario
// executor, point-parallel for the first time, while staying
// bit-reproducible per (seed, point).
#include <string>
#include <vector>

#include "core/cpu_petri_net.hpp"
#include "core/models.hpp"
#include "petri/dot.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

namespace wsn::scenario {
namespace {

/// The paper's three PUD rows for Tables 4/5.
const std::vector<double> kPaperPudValues = {0.001, 0.3, 10.0};

void SetSweepMeta(ResultSet& results, const core::EvalConfig& cfg,
                  std::size_t points) {
  results.SetMeta("sim-time", util::FormatFixed(cfg.sim_time, 0) + " s");
  results.SetMeta("replications", std::to_string(cfg.replications));
  results.SetMeta("seed", std::to_string(cfg.seed));
  results.SetMeta("points", std::to_string(points));
}

core::DeltaTables PaperDeltaTables(const ScenarioContext& ctx,
                                   const core::EvalConfig& cfg,
                                   std::size_t points) {
  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  return core::ComputeDeltaTables(sim, markov, pn, PaperParams(),
                                  kPaperPudValues, core::PaperPdtGrid(points),
                                  energy::Pxa271(), kEnergyHorizonSeconds,
                                  ctx.Executor());
}

void FillDeltaTable(ResultTable& table, const std::vector<core::DeltaRow>& rows) {
  for (const core::DeltaRow& row : rows) {
    table.AddNumericRow({row.power_up_delay, row.sim_markov, row.sim_pn,
                         row.markov_pn},
                        3);
  }
}

std::vector<util::FlagSpec> SweepFlags() {
  std::vector<util::FlagSpec> flags = CommonEvalFlags();
  flags.push_back(PointsFlag());
  return flags;
}

ResultSet RunTable4(const ScenarioContext& ctx) {
  const core::EvalConfig cfg = EvalConfigFromArgs(ctx.Args());
  const std::size_t points = SweepPointsFromArgs(ctx.Args());

  ResultSet results("Table 4: |Delta| steady-state percentages (pct points) "
                    "for varying Power Up Delay");
  SetSweepMeta(results, cfg, points);
  ResultTable& table =
      results.AddTable("share-deltas", {"PowerUpDelay(s)", "Avg |Sim-Markov|",
                                        "Avg |Sim-PN|", "Avg |Markov-PN|"});
  FillDeltaTable(table, PaperDeltaTables(ctx, cfg, points).share_deltas);
  results.AddNote(
      "Paper Table 4 (for reference, summed over the 4 states the paper\n"
      "reports larger magnitudes; shape is what must match):\n"
      "  PUD=0.001: Sim-Markov 0.338, Sim-PN 0.351, Markov-PN 0.076\n"
      "  PUD=0.3  : Sim-Markov 4.182, Sim-PN 1.677, Markov-PN 3.338\n"
      "  PUD=10.0 : Sim-Markov 116.8, Sim-PN 16.05, Markov-PN 103.1\n"
      "Expected shape: Sim-Markov explodes as PUD grows; Sim-PN stays "
      "small.");
  return results;
}

ResultSet RunTable5(const ScenarioContext& ctx) {
  const core::EvalConfig cfg = EvalConfigFromArgs(ctx.Args());
  const std::size_t points = SweepPointsFromArgs(ctx.Args());

  ResultSet results("Table 5: |Delta| energy (J) for varying Power Up Delay "
                    "(PXA271, Eq. 25)");
  SetSweepMeta(results, cfg, points);
  ResultTable& table =
      results.AddTable("energy-deltas", {"PowerUpDelay(s)", "Avg |Sim-Markov|",
                                         "Avg |Sim-PN|", "Avg |Markov-PN|"});
  FillDeltaTable(table, PaperDeltaTables(ctx, cfg, points).energy_deltas);
  results.AddNote(
      "Paper Table 5 (reference):\n"
      "  PUD=0.001: Sim-Markov 0.154, Sim-PN 0.166, Markov-PN 0.037\n"
      "  PUD=0.3  : Sim-Markov 1.558, Sim-PN 0.298, Markov-PN 1.401\n"
      "  PUD=10.0 : Sim-Markov 24.87, Sim-PN 1.285, Markov-PN 25.41\n"
      "Expected shape: the Markov energy error grows with PUD while the "
      "Petri net tracks the simulation.");
  return results;
}

/// The three per-model sweeps behind both figures.
struct FigureSweeps {
  core::SweepSeries sim;
  core::SweepSeries markov;
  core::SweepSeries pn;
  std::vector<double> grid;
};

FigureSweeps RunFigureSweeps(const ScenarioContext& ctx,
                             const core::EvalConfig& cfg,
                             const core::CpuParams& base, std::size_t points) {
  FigureSweeps out;
  out.grid = core::PaperPdtGrid(points);
  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const auto table = energy::Pxa271();
  out.sim = core::SweepPowerDownThreshold(sim, base, out.grid, table,
                                          kEnergyHorizonSeconds,
                                          ctx.Executor());
  out.markov = core::SweepPowerDownThreshold(markov, base, out.grid, table,
                                             kEnergyHorizonSeconds,
                                             ctx.Executor());
  out.pn = core::SweepPowerDownThreshold(pn, base, out.grid, table,
                                         kEnergyHorizonSeconds,
                                         ctx.Executor());
  return out;
}

std::vector<util::FlagSpec> FigureFlags() {
  std::vector<util::FlagSpec> flags = SweepFlags();
  flags.push_back({"pud", "D", "0.001", "Power Up Delay (s)"});
  return flags;
}

ResultSet RunFig4(const ScenarioContext& ctx) {
  const core::EvalConfig cfg = EvalConfigFromArgs(ctx.Args());
  const std::size_t points = SweepPointsFromArgs(ctx.Args());
  core::CpuParams base = PaperParams();
  base.power_up_delay = ctx.Args().GetDouble("pud", 0.001);

  ResultSet results("Figure 4: state shares vs Power Down Threshold");
  SetSweepMeta(results, cfg, points);
  results.SetMeta("pud", util::FormatFixed(base.power_up_delay, 3) + " s");

  if (ctx.Args().GetBool("net")) {
    // Structure audit: DOT export of the Table 1 net.
    const petri::PetriNet net = core::BuildCpuPetriNet(base);
    results.AddNote(petri::ToDot(net, "cpu_edspn"));
  }

  const FigureSweeps s = RunFigureSweeps(ctx, cfg, base, points);
  ResultTable& table = results.AddTable(
      "state-shares",
      {"PDT(s)", "sim:idle%", "sim:standby%", "sim:powerup%", "sim:active%",
       "mkv:idle%", "mkv:standby%", "mkv:powerup%", "mkv:active%",
       "pn:idle%", "pn:standby%", "pn:powerup%", "pn:active%"});
  for (std::size_t i = 0; i < s.grid.size(); ++i) {
    const auto& a = s.sim.points[i].eval.shares;
    const auto& b = s.markov.points[i].eval.shares;
    const auto& c = s.pn.points[i].eval.shares;
    table.AddNumericRow(
        {s.grid[i], a.idle * 100.0, a.standby * 100.0, a.powerup * 100.0,
         a.active * 100.0, b.idle * 100.0, b.standby * 100.0,
         b.powerup * 100.0, b.active * 100.0, c.idle * 100.0,
         c.standby * 100.0, c.powerup * 100.0, c.active * 100.0},
        2);
  }
  results.AddNote(
      "Expected shape (paper Fig. 4): Idle rises and Standby falls with "
      "PDT; Active stays ~" +
      util::FormatFixed(PaperParams().Rho() * 100.0, 1) +
      "%; PowerUp stays near zero at PUD = 0.001 s.");
  return results;
}

ResultSet RunFig5(const ScenarioContext& ctx) {
  const core::EvalConfig cfg = EvalConfigFromArgs(ctx.Args());
  const std::size_t points = SweepPointsFromArgs(ctx.Args());
  core::CpuParams base = PaperParams();
  base.power_up_delay = ctx.Args().GetDouble("pud", 0.001);

  ResultSet results("Figure 5: energy (J) vs Power Down Threshold "
                    "(PXA271, Eq. 25)");
  SetSweepMeta(results, cfg, points);
  results.SetMeta("pud", util::FormatFixed(base.power_up_delay, 3) + " s");

  const FigureSweeps s = RunFigureSweeps(ctx, cfg, base, points);
  ResultTable& table = results.AddTable(
      "energy", {"PDT(s)", "Simulation(J)", "Markov(J)", "PetriNet(J)"});
  for (std::size_t i = 0; i < s.grid.size(); ++i) {
    table.AddNumericRow({s.grid[i], s.sim.points[i].energy_joules,
                         s.markov.points[i].energy_joules,
                         s.pn.points[i].energy_joules},
                        3);
  }
  results.AddNote(
      "Expected shape (paper Fig. 5): energy increases with PDT (more time "
      "in 88 mW Idle instead of 17 mW Standby), all three curves nearly "
      "coincident at small PUD.");
  return results;
}

const ScenarioRegistrar reg_table4(MakeScenario(
    "table4",
    "pairwise model deltas of steady-state percentages over the PDT sweep",
    "paper Table 4", SweepFlags(), RunTable4));

const ScenarioRegistrar reg_table5(MakeScenario(
    "table5", "pairwise model deltas of predicted energy over the PDT sweep",
    "paper Table 5", SweepFlags(), RunTable5));

const ScenarioRegistrar reg_fig4(MakeScenario(
    "fig4", "state shares vs Power Down Threshold for the three models",
    "paper Figure 4",
    [] {
      std::vector<util::FlagSpec> flags = FigureFlags();
      flags.push_back({"net", "", "", "also emit the Fig. 3 EDSPN as DOT"});
      return flags;
    }(),
    RunFig4));

const ScenarioRegistrar reg_fig5(MakeScenario(
    "fig5", "total energy vs Power Down Threshold for the three models",
    "paper Figure 5", FigureFlags(), RunFig5));

}  // namespace
}  // namespace wsn::scenario
