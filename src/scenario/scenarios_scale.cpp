// Registered netsim scaling benchmark (ISSUE 5, extended for ISSUE 7):
// end-to-end packet simulation at N up to 100k nodes, flat vs
// clustered, with the death-triggered routing-update and election costs
// made visible.
//
// Each size runs the same deployment four ways:
//   * flat-incremental — spatial-grid neighbour index + incremental
//     repair (the production path);
//   * flat-legacy      — the faithful pre-grid all-pairs recompute per
//     death (RoutingTable::RecomputeLegacy), run in-bench so the quoted
//     speedup is measured against the real former implementation (only
//     up to --legacy-max nodes: O(deaths * N^2) is the point; above the
//     cutoff the row stays in the table, marked "skipped");
//   * clustered        — LEACH-style rotation on the same topology with
//     grid-accelerated head assignment (the production path);
//   * clustered-allpairs — the same run with the O(N * heads) all-pairs
//     head-assignment oracle (HeadAssignMode::kAllPairs), gated on
//     --legacy-max like flat-legacy and hard-checked for equivalence.
//
// Deaths are staged deterministically: a strided subset of nodes gets a
// battery sized to empty at a chosen instant inside the horizon, so
// every size exercises a comparable number of routing repairs without
// waiting for the whole deployment to drain.  The flat runs share one
// RNG stream and must produce identical reports — the benchmark
// hard-fails if the legacy and incremental paths diverge, making every
// bench run an equivalence check too.
//
// `wsnctl run netsim-scale --format=json > BENCH_netsim_scale.json`
// produces the committed scaling record (see docs/performance.md);
// tools/bench_compare.py diffs two such files.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/models.hpp"
#include "netsim/netsim.hpp"
#include "obs/session.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {
namespace {

std::vector<std::size_t> ParseSizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    util::Require(!item.empty(), "flag --sizes: empty size entry");
    std::size_t parsed = 0;
    std::size_t consumed = 0;
    try {
      parsed = static_cast<std::size_t>(std::stoull(item, &consumed));
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != item.size()) {
      throw util::InvalidArgument("flag --sizes: '" + item +
                                  "' is not a node count");
    }
    util::Require(parsed >= 1 && parsed <= 200000,
                  "flag --sizes entries must be in 1..200000");
    sizes.push_back(parsed);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  util::Require(!sizes.empty(), "flag --sizes needs at least one size");
  for (std::size_t k = 1; k < sizes.size(); ++k) {
    util::Require(sizes[k] > sizes[k - 1],
                  "flag --sizes must be strictly increasing");
  }
  return sizes;
}

/// Near-square grid deployment trimmed to exactly `n` nodes.
std::vector<node::Position> ScaleTopology(std::size_t n, double spacing) {
  const std::size_t cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  std::vector<node::Position> positions = node::MakeGrid(cols, rows, spacing);
  positions.resize(n);
  return positions;
}

struct ScaleRun {
  netsim::NetSimReport report;
  double wall_s = 0.0;
  std::uint64_t deaths = 0;
  obs::MetricsSnapshot metrics;  ///< merged over reps (obs enabled only)
  std::string trace;             ///< concatenated (obs enabled only)
};

ScaleRun TimeRun(netsim::NetSimConfig cfg, double cpu_mw, std::uint64_t seed,
                 std::size_t replications) {
  const util::Rng master(seed);
  ScaleRun out;
  obs::Stopwatch wall;
  for (std::size_t r = 0; r < replications; ++r) {
    cfg.obs.trace.replication = static_cast<std::uint32_t>(r);
    netsim::NetworkSimulator sim(cfg, cpu_mw, master.MakeStream(r));
    obs::PhaseTimer run_timer(&wall);
    netsim::NetSimReport report = sim.Run();
    run_timer.Stop();
    // Deaths are summed across replications, like every other column.
    for (const netsim::NodeSimStats& node : report.nodes) {
      if (!node.alive) ++out.deaths;
    }
    out.metrics.MergeFrom(report.metrics);
    out.trace += report.trace;
    if (r == 0) {
      out.report = std::move(report);
    } else {
      out.report.events += report.events;
      out.report.routing_repairs += report.routing_repairs;
      out.report.routing_repair_s += report.routing_repair_s;
      out.report.elections += report.elections;
      out.report.election_s += report.election_s;
      out.report.assign_s += report.assign_s;
      out.report.packets.generated += report.packets.generated;
      out.report.packets.delivered += report.packets.delivered;
    }
  }
  out.wall_s = wall.seconds;
  return out;
}

ResultSet RunNetsimScale(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const std::vector<std::size_t> sizes =
      ParseSizes(args.GetString("sizes", "100,1000,5000,10000,100000"));
  const double spacing = args.GetDouble("spacing", 15.0);
  const double hop = args.GetDouble("hop", 40.0);
  const double rate = args.GetDouble("rate", 0.01);
  const double horizon = args.GetDouble("horizon", 2000.0);
  const double death_fraction = args.GetDouble("death-fraction", 0.08);
  util::Require(death_fraction > 0.0 && death_fraction <= 0.8,
                "flag --death-fraction must be in (0, 0.8]");
  const std::size_t legacy_max = args.GetCount("legacy-max", 5000);
  const std::size_t replications = args.GetCount("replications", 1, 1);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetCount("seed", 2008));
  const double round_s = args.GetDouble("round", horizon / 20.0);

  ResultSet results(
      "netsim at scale: spatial-grid routing repair and head assignment "
      "vs their all-pairs baselines, flat and clustered");
  results.SetMeta("sizes",
                  args.GetString("sizes", "100,1000,5000,10000,100000"));
  results.SetMeta("spacing", util::FormatFixed(spacing, 0) + " m");
  results.SetMeta("hop", util::FormatFixed(hop, 0) + " m");
  results.SetMeta("rate", util::FormatFixed(rate, 3) + " /s per node");
  results.SetMeta("horizon", util::FormatFixed(horizon, 0) + " s");
  results.SetMeta("death-fraction", util::FormatFixed(death_fraction, 3));
  results.SetMeta("legacy-max", std::to_string(legacy_max));
  results.SetMeta("replications", std::to_string(replications));
  results.SetMeta("seed", std::to_string(seed));

  // "elections" / "assign (s)" are appended at the END of the header
  // list on purpose: bench_compare.py zips rows positionally against the
  // baseline's headers, so older baselines still align column for
  // column.
  ResultTable& table = results.AddTable(
      "scale", {"config", "nodes", "deaths", "route updates", "events",
                "wall (s)", "events/s", "repair (s)", "repair %",
                "speedup vs legacy", "elections", "assign (s)"});

  // With --metrics active the internal obs timings (routing repair,
  // election, head assignment) join the bench JSON as their own table,
  // keyed "N=<n> <mode> <metric>" so tools/bench_compare.py can regress
  // on them like any other row.  Gated on the flag: the default JSON
  // stays byte-compatible with committed baselines.  Rows are buffered
  // and the table added after the loop — AddTable invalidates earlier
  // table references (see result.hpp).
  const bool want_metrics = ctx.obs != nullptr && ctx.obs->MetricsEnabled();
  std::vector<std::vector<std::string>> metric_rows;

  const core::MarkovCpuModel model;
  for (const std::size_t n : sizes) {
    netsim::NetSimConfig cfg;
    cfg.network.node.cpu.arrival_rate = rate;
    cfg.network.node.cpu.service_rate = 10.0 * std::max(rate, 0.1);
    cfg.network.node.cpu_power = energy::Msp430();
    cfg.network.node.sample_bits = 1024;
    cfg.network.node.listen_duty_cycle = 0.01;
    cfg.network.sink = {0.0, 0.0};
    cfg.network.max_hop_m = hop;
    cfg.positions = ScaleTopology(n, spacing);
    cfg.horizon_s = horizon;

    const double cpu_mw = netsim::CpuAveragePowerMw(cfg, model);
    const node::NodeConfig& tpl = cfg.network.node;
    const double baseline_mw =
        cpu_mw + tpl.listen_duty_cycle * tpl.radio.listen_mw +
        (1.0 - tpl.listen_duty_cycle) * tpl.radio.sleep_mw;

    // Stage the deaths: `doomed` nodes, strided across the deployment
    // (skipping the sink-adjacent first decile so the network stays
    // partially connected), get batteries that the continuous baseline
    // alone empties at instants spread over [0.3, 0.9] * horizon.
    // Packet energy only moves those deaths earlier; everyone else gets
    // a battery that comfortably outlives the horizon.
    const std::size_t doomed = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(death_fraction *
                                               static_cast<double>(n))));
    cfg.battery_mah_override.assign(n, 50.0);
    const std::size_t low = n / 10;
    for (std::size_t k = 0; k < doomed; ++k) {
      const std::size_t span = n - low;
      const std::size_t idx = low + (k * span) / doomed;
      const double frac = doomed > 1
                              ? static_cast<double>(k) /
                                    static_cast<double>(doomed - 1)
                              : 0.0;
      const double death_t = horizon * (0.3 + 0.6 * frac);
      cfg.battery_mah_override[idx] =
          (baseline_mw / 1000.0) * death_t / (tpl.battery_volts * 3.6);
    }

    ApplyObs(ctx, cfg);

    // --- flat: incremental (production) vs legacy (baseline) ---------
    cfg.routing_update = netsim::RoutingUpdateMode::kIncremental;
    const ScaleRun inc = TimeRun(cfg, cpu_mw, seed, replications);

    bool ran_legacy = false;
    ScaleRun legacy;
    if (n <= legacy_max) {
      cfg.routing_update = netsim::RoutingUpdateMode::kLegacy;
      legacy = TimeRun(cfg, cpu_mw, seed, replications);
      ran_legacy = true;
      if (legacy.report.events != inc.report.events ||
          legacy.report.packets.delivered != inc.report.packets.delivered ||
          legacy.deaths != inc.deaths) {
        throw util::Error(
            "netsim-scale: legacy and incremental routing paths diverged "
            "at N=" + std::to_string(n));
      }
    }

    // --- clustered (LEACH): grid assignment (production) vs the
    // all-pairs oracle, mirroring the flat legacy gating ---------------
    netsim::NetSimConfig ccfg = cfg;
    ccfg.routing_update = netsim::RoutingUpdateMode::kIncremental;
    ccfg.cluster.protocol = netsim::ClusterProtocolKind::kLeach;
    ccfg.cluster.head_fraction = 0.05;
    ccfg.cluster.round_s = round_s;
    ccfg.cluster.aggregation = 4;
    ccfg.cluster.assign = netsim::HeadAssignMode::kGrid;
    const ScaleRun clustered = TimeRun(ccfg, cpu_mw, seed, replications);

    bool ran_allpairs = false;
    ScaleRun allpairs;
    if (n <= legacy_max) {
      ccfg.cluster.assign = netsim::HeadAssignMode::kAllPairs;
      allpairs = TimeRun(ccfg, cpu_mw, seed, replications);
      ran_allpairs = true;
      if (allpairs.report.events != clustered.report.events ||
          allpairs.report.packets.delivered !=
              clustered.report.packets.delivered ||
          allpairs.deaths != clustered.deaths) {
        throw util::Error(
            "netsim-scale: grid and all-pairs head assignment diverged "
            "at N=" + std::to_string(n));
      }
    }

    const auto add_row = [&](const std::string& mode, const ScaleRun& run,
                             const std::string& speedup) {
      const double events = static_cast<double>(run.report.events);
      table.AddRow(
          {"N=" + std::to_string(n) + " " + mode, std::to_string(n),
           std::to_string(run.deaths),
           std::to_string(run.report.routing_repairs),
           std::to_string(run.report.events),
           util::FormatFixed(run.wall_s, 3),
           util::FormatFixed(events / run.wall_s, 0),
           util::FormatFixed(run.report.routing_repair_s, 3),
           util::FormatFixed(
               100.0 * run.report.routing_repair_s / run.wall_s, 1),
           speedup, std::to_string(run.report.elections),
           util::FormatFixed(run.report.assign_s, 3)});
    };
    // A baseline gated out by --legacy-max keeps its row, explicitly
    // marked, so consumers (and bench_compare.py) see "skipped" instead
    // of a silently missing key.
    const auto add_skipped = [&](const std::string& mode) {
      table.AddRow({"N=" + std::to_string(n) + " " + mode,
                    std::to_string(n), "skipped", "skipped", "skipped",
                    "skipped", "skipped", "skipped", "skipped",
                    "skipped (N > legacy-max)", "skipped", "skipped"});
    };
    const auto add_obs = [&](const std::string& mode, const ScaleRun& run) {
      if (ctx.obs != nullptr) ctx.obs->Contribute(run.metrics, run.trace);
      if (!want_metrics) return;
      const std::string prefix = "N=" + std::to_string(n) + " " + mode + " ";
      for (const auto& [name, sw] : run.metrics.timings) {
        metric_rows.push_back({prefix + name,
                               util::FormatFixed(sw.seconds, 6)});
        metric_rows.push_back({prefix + name + ".calls",
                               std::to_string(sw.calls)});
      }
    };
    if (ran_legacy) {
      add_row("flat-legacy", legacy, "1.00");
      add_row("flat-incremental", inc,
              util::FormatFixed(legacy.wall_s / inc.wall_s, 2));
      add_obs("flat-legacy", legacy);
    } else {
      add_skipped("flat-legacy");
      add_row("flat-incremental", inc, "n/a (legacy skipped)");
    }
    add_obs("flat-incremental", inc);
    if (ran_allpairs) {
      add_row("clustered-allpairs", allpairs, "1.00");
      add_row("clustered", clustered,
              util::FormatFixed(allpairs.wall_s / clustered.wall_s, 2));
      add_obs("clustered-allpairs", allpairs);
    } else {
      add_skipped("clustered-allpairs");
      add_row("clustered", clustered, "n/a (all-pairs skipped)");
    }
    add_obs("clustered", clustered);
  }

  if (want_metrics) {
    ResultTable& mtable = results.AddTable("metrics", {"key", "value"});
    for (std::vector<std::string>& row : metric_rows) {
      mtable.AddRow(std::move(row));
    }
  }

  results.AddNote(
      "flat-legacy re-routes a death with the pre-grid all-pairs scan "
      "(O(N^2), one sqrt per pair); flat-incremental repairs only the "
      "routes through the dead node over the spatial-grid neighbour "
      "index.  clustered-allpairs assigns members to heads with the "
      "O(N * heads) scan; clustered uses the ring-expanding grid "
      "search.  Paired paths must produce identical reports — the run "
      "aborts on divergence; their speedup columns compare against "
      "their own oracle (flat-legacy / clustered-allpairs = 1.00).  "
      "Timings are wall-clock and machine-dependent; diff two JSON "
      "outputs with tools/bench_compare.py.");
  return results;
}

const ScenarioRegistrar reg_netsim_scale(MakeScenario(
    "netsim-scale",
    "scaling benchmark: grid-indexed incremental routing repair and "
    "grid-accelerated head assignment vs their all-pairs baselines at N "
    "up to 100k, flat and clustered",
    "extension (engineering benchmark, BENCH_netsim_scale.json)",
    {
        {"sizes", "CSV", "100,1000,5000,10000,100000",
         "comma-separated node counts (strictly increasing)"},
        {"spacing", "M", "15", "grid spacing (m)"},
        {"hop", "M", "40", "max radio hop range (m)"},
        {"rate", "L", "0.01", "per-node report rate (1/s)"},
        {"horizon", "S", "2000", "simulation horizon (s)"},
        {"death-fraction", "F", "0.08",
         "fraction of nodes staged to die inside the horizon"},
        {"legacy-max", "N", "5000",
         "largest N that also runs the O(N^2) legacy baseline"},
        {"replications", "R", "1", "replications per configuration (>= 1)"},
        {"seed", "N", "2008", "master RNG seed (non-negative)"},
        {"round", "S", "", "cluster round length (s); default horizon/20"},
    },
    RunNetsimScale));

}  // namespace
}  // namespace wsn::scenario
