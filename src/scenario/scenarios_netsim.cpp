// Registered scenarios for the packet-level network simulator: the
// lifetime study (deaths, re-routing, partition under bursty traffic)
// and the replication-throughput benchmark.  Thin flag-parsing wrappers
// over the shared study runners in scenario/studies.{hpp,cpp}, which
// the declarative spec interpreter (`wsnctl run --file`) drives with
// the same params — both paths are byte-identical by construction.
#include <string>
#include <utility>
#include <vector>

#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "scenario/studies.hpp"

namespace wsn::scenario {
namespace {

ResultSet RunNetsimLifetime(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  LifetimeStudyParams p;
  p.cols = args.GetCount("cols", 10, 1);
  p.rows = args.GetCount("rows", 5, 1);
  p.spacing_m = args.GetDouble("spacing", 15.0);
  p.hop_m = args.GetDouble("hop", 40.0);
  p.rate_hz = args.GetDouble("rate", 2.0);
  p.battery_mah = args.GetDouble("battery-mah", 0.05);
  p.horizon_s = args.GetDouble("horizon", 4000.0);
  p.steady = args.GetBool("steady");
  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 8);
  p.replications = rep.replications;
  p.seed = rep.seed;
  return RunLifetimeStudy(ctx, p);
}

ResultSet RunNetsimThroughput(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  ThroughputStudyParams p;
  p.cols = args.GetCount("cols", 10, 1);
  p.rows = args.GetCount("rows", 10, 1);
  p.spacing_m = args.GetDouble("spacing", 25.0);
  p.hop_m = args.GetDouble("hop", 40.0);
  p.rate_hz = args.GetDouble("rate", 2.0);
  p.horizon_s = args.GetDouble("horizon", 30.0);
  p.clustered = args.GetBool("clustered");
  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 32);
  p.replications = rep.replications;
  p.seed = rep.seed;
  return RunThroughputStudy(ctx, p);
}

std::vector<util::FlagSpec> TopologyFlags(const std::string& cols,
                                          const std::string& rows,
                                          const std::string& spacing) {
  return {
      {"cols", "C", cols, "grid columns"},
      {"rows", "R", rows, "grid rows"},
      {"spacing", "M", spacing, "grid spacing (m)"},
      {"hop", "M", "40", "max radio hop range (m)"},
      {"rate", "L", "2", "per-node report rate (1/s)"},
  };
}

const ScenarioRegistrar reg_netsim_lifetime(MakeScenario(
    "netsim-lifetime",
    "packet-level lifetime study: deaths, re-routing and partition",
    "extension (dynamic counterpart of wsn-lifetime)",
    [] {
      std::vector<util::FlagSpec> flags = TopologyFlags("10", "5", "15");
      flags.push_back({"battery-mah", "MAH", "0.05", "per-node battery"});
      flags.push_back({"horizon", "S", "4000", "simulation horizon (s)"});
      flags.push_back({"replications", "R", "8",
                       "independent replications (>= 1)"});
      flags.push_back({"seed", "N", "2008", "master RNG seed (non-negative)"});
      flags.push_back({"steady", "", "",
                       "steady Poisson traffic instead of bursty MMPP"});
      return flags;
    }(),
    RunNetsimLifetime));

const ScenarioRegistrar reg_netsim_throughput(MakeScenario(
    "netsim-throughput",
    "replications/second: serial vs the scenario executor",
    "extension (engineering benchmark)",
    [] {
      std::vector<util::FlagSpec> flags = TopologyFlags("10", "10", "25");
      flags.push_back({"horizon", "S", "30", "simulation horizon (s)"});
      flags.push_back({"replications", "R", "32",
                       "independent replications (>= 1)"});
      flags.push_back({"seed", "N", "2008", "master RNG seed (non-negative)"});
      flags.push_back({"clustered", "", "",
                       "benchmark the clustered (LEACH) data path"});
      return flags;
    }(),
    RunNetsimThroughput));

}  // namespace
}  // namespace wsn::scenario
