// Registered scenarios for the packet-level network simulator: the
// lifetime study (deaths, re-routing, partition under bursty traffic)
// and the replication-throughput benchmark, both thin clients of the
// scenario executor.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/models.hpp"
#include "des/bursty_workload.hpp"
#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {
namespace {

netsim::NetSimConfig NetConfigFromArgs(const util::CliArgs& args,
                                       double default_rate,
                                       double default_spacing,
                                       std::size_t default_cols,
                                       std::size_t default_rows) {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = args.GetDouble("rate", default_rate);
  cfg.network.node.cpu.service_rate =
      10.0 * cfg.network.node.cpu.arrival_rate;
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = args.GetDouble("hop", 40.0);
  cfg.positions = node::MakeGrid(args.GetCount("cols", default_cols, 1),
                                 args.GetCount("rows", default_rows, 1),
                                 args.GetDouble("spacing", default_spacing));
  return cfg;
}

// End-to-end lifetime study (ported from the netsim_demo main): a node
// grid reporting to a corner sink under bursty (MMPP quiet/storm)
// traffic, with small batteries so a run exhibits the full arc — node
// deaths, re-routing around dead relays, and finally partition.
ResultSet RunNetsimLifetime(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  netsim::NetSimConfig cfg = NetConfigFromArgs(args, 2.0, 15.0, 10, 5);
  cfg.network.node.cpu_power = energy::Msp430();
  cfg.network.node.battery_mah = args.GetDouble("battery-mah", 0.05);
  cfg.horizon_s = args.GetDouble("horizon", 4000.0);
  cfg.stop_at_partition = true;  // measure the connected phase
  cfg.timeline_interval_s = cfg.horizon_s / 20.0;

  const bool steady = args.GetBool("steady");
  if (!steady) {
    // Event-storm traffic: mostly quiet at 20% of the nominal rate, with
    // occasional bursts at 10x (long-run mean close to the nominal rate).
    const double rate = cfg.network.node.cpu.arrival_rate;
    cfg.traffic_factory = [rate](std::size_t) {
      return std::make_unique<des::MmppWorkload>(
          std::vector<double>{0.2 * rate, 10.0 * rate},
          std::vector<std::vector<double>>{{-0.02, 0.02}, {0.2, -0.2}});
    };
  }

  netsim::ReplicationConfig rep = NetsimRepConfig(args, 8);
  rep.keep_reports = true;
  ApplyObs(ctx, cfg);

  const core::MarkovCpuModel model;
  const netsim::ReplicationSummary summary =
      RunReplications(cfg, model, rep, ctx.Executor());
  ContributeObs(ctx, summary);

  ResultSet results("netsim lifetime study: deaths, re-routing, partition");
  results.SetMeta("nodes", std::to_string(cfg.positions.size()));
  results.SetMeta("traffic", steady ? "steady Poisson" : "bursty MMPP");
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("horizon", util::FormatFixed(cfg.horizon_s, 0) + " s");
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& lifetimes = results.AddTable(
      "summary", {"metric", "mean +- 95% CI", "observed in"});
  lifetimes.AddRow({"time to first death (s)",
                    MetricCell(summary.first_death_s, 1),
                    ObservedCell(summary.first_death_s.observed,
                                 summary.replications)});
  lifetimes.AddRow({"time to partition (s)",
                    MetricCell(summary.partition_s, 1),
                    ObservedCell(summary.partition_s.observed,
                                 summary.replications)});
  lifetimes.AddRow({"delivery ratio", MetricCell(summary.delivery_ratio, 4),
                    ObservedCell(summary.replications, summary.replications)});
  lifetimes.AddRow({"packets delivered", MetricCell(summary.delivered, 1),
                    ObservedCell(summary.replications, summary.replications)});

  // Zoom into replication 0: the hot path near the sink dies first.
  const netsim::NetSimReport& rep0 = summary.reports.front();
  ResultTable& nodes = results.AddTable(
      "replication-0-nodes", {"node", "pos", "generated", "forwarded",
                              "dropped", "energy (J)", "death (s)"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < rep0.nodes.size() && shown < 10; ++i) {
    const netsim::NodeSimStats& n = rep0.nodes[i];
    if (n.alive && shown >= 5) continue;  // highlight the casualties
    ++shown;
    nodes.AddRow({std::to_string(i),
                  "(" + util::FormatFixed(cfg.positions[i].x, 0) + "," +
                      util::FormatFixed(cfg.positions[i].y, 0) + ")",
                  std::to_string(n.generated), std::to_string(n.forwarded),
                  std::to_string(n.dropped),
                  util::FormatFixed(n.energy_used_j, 3),
                  std::isfinite(n.death_s) ? util::FormatFixed(n.death_s, 1)
                                           : std::string("alive")});
  }

  ResultTable& drops =
      results.AddTable("replication-0-drops", {"drop reason", "packets"});
  for (std::size_t r = 0; r < netsim::kDropReasonCount; ++r) {
    const auto reason = static_cast<netsim::DropReason>(r);
    drops.AddRow({netsim::DropReasonName(reason),
                  std::to_string(rep0.packets.Dropped(reason))});
  }

  results.AddNote(
      "replication 0: generated " + std::to_string(rep0.packets.generated) +
      ", delivered " + std::to_string(rep0.packets.delivered) +
      ", first death " +
      (std::isfinite(rep0.first_death_s)
           ? "at " + util::FormatFixed(rep0.first_death_s, 1) + " s (node " +
                 std::to_string(rep0.first_dead_node) + ")"
           : std::string("never")) +
      ", partition " +
      (std::isfinite(rep0.partition_s)
           ? "at " + util::FormatFixed(rep0.partition_s, 1) + " s"
           : std::string("never")) +
      ", " + std::to_string(rep0.events) + " events");
  return results;
}

// Replication-throughput benchmark (ported from the bench_netsim main):
// replications/second single-threaded vs fanned out across the scenario
// executor, on a node-grid topology.
ResultSet RunNetsimThroughput(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  netsim::NetSimConfig cfg = NetConfigFromArgs(args, 2.0, 25.0, 10, 10);
  cfg.network.node.cpu_power = energy::Pxa271();
  cfg.horizon_s = args.GetDouble("horizon", 30.0);
  // --clustered benchmarks the LEACH data path (elections, aggregation)
  // instead of flat greedy multi-hop.
  const bool clustered = args.GetBool("clustered");
  if (clustered) {
    cfg.cluster.protocol = netsim::ClusterProtocolKind::kLeach;
    cfg.cluster.round_s = cfg.horizon_s / 5.0;
    cfg.cluster.aggregation = 4;
  }

  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 32);
  const core::MarkovCpuModel model;

  ResultSet results("netsim replication throughput: serial vs executor");
  results.SetMeta("routing", clustered ? "clustered (leach)" : "flat greedy");
  results.SetMeta("nodes", std::to_string(cfg.positions.size()));
  results.SetMeta("horizon", util::FormatFixed(cfg.horizon_s, 0) + " s");
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("hardware-threads",
                  std::to_string(std::thread::hardware_concurrency()));

  const auto timed = [&](util::ParallelExecutor& executor) {
    const auto start = std::chrono::steady_clock::now();
    const netsim::ReplicationSummary summary =
        RunReplications(cfg, model, rep, executor);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::make_pair(summary, wall);
  };

  util::ParallelExecutor serial_exec(1);
  const auto [serial, serial_s] = timed(serial_exec);
  // Observe only the executor leg: contributing both legs would double
  // every counter for what is conceptually one benchmarked workload.
  ApplyObs(ctx, cfg);
  const auto [parallel, parallel_s] = timed(ctx.Executor());
  ContributeObs(ctx, parallel);

  const double reps = static_cast<double>(rep.replications);
  ResultTable& table = results.AddTable(
      "throughput", {"mode", "threads", "wall (s)", "replications/s",
                     "speedup"});
  table.AddRow({"serial", "1", util::FormatFixed(serial_s, 3),
                util::FormatFixed(reps / serial_s, 2), "1.00"});
  table.AddRow({"executor", std::to_string(ctx.Executor().ThreadCount()),
                util::FormatFixed(parallel_s, 3),
                util::FormatFixed(reps / parallel_s, 2),
                util::FormatFixed(serial_s / parallel_s, 2)});

  results.AddNote("checks: delivery ratio " +
                  util::FormatInterval(serial.delivery_ratio.ci.mean,
                                       serial.delivery_ratio.ci.half_width,
                                       4) +
                  " (serial) vs " +
                  util::FormatInterval(parallel.delivery_ratio.ci.mean,
                                       parallel.delivery_ratio.ci.half_width,
                                       4) +
                  " (parallel) — identical streams, identical results");
  return results;
}

std::vector<util::FlagSpec> TopologyFlags(const std::string& cols,
                                          const std::string& rows,
                                          const std::string& spacing) {
  return {
      {"cols", "C", cols, "grid columns"},
      {"rows", "R", rows, "grid rows"},
      {"spacing", "M", spacing, "grid spacing (m)"},
      {"hop", "M", "40", "max radio hop range (m)"},
      {"rate", "L", "2", "per-node report rate (1/s)"},
  };
}

const ScenarioRegistrar reg_netsim_lifetime(MakeScenario(
    "netsim-lifetime",
    "packet-level lifetime study: deaths, re-routing and partition",
    "extension (dynamic counterpart of wsn-lifetime)",
    [] {
      std::vector<util::FlagSpec> flags = TopologyFlags("10", "5", "15");
      flags.push_back({"battery-mah", "MAH", "0.05", "per-node battery"});
      flags.push_back({"horizon", "S", "4000", "simulation horizon (s)"});
      flags.push_back({"replications", "R", "8",
                       "independent replications (>= 1)"});
      flags.push_back({"seed", "N", "2008", "master RNG seed (non-negative)"});
      flags.push_back({"steady", "", "",
                       "steady Poisson traffic instead of bursty MMPP"});
      return flags;
    }(),
    RunNetsimLifetime));

const ScenarioRegistrar reg_netsim_throughput(MakeScenario(
    "netsim-throughput",
    "replications/second: serial vs the scenario executor",
    "extension (engineering benchmark)",
    [] {
      std::vector<util::FlagSpec> flags = TopologyFlags("10", "10", "25");
      flags.push_back({"horizon", "S", "30", "simulation horizon (s)"});
      flags.push_back({"replications", "R", "32",
                       "independent replications (>= 1)"});
      flags.push_back({"seed", "N", "2008", "master RNG seed (non-negative)"});
      flags.push_back({"clustered", "", "",
                       "benchmark the clustered (LEACH) data path"});
      return flags;
    }(),
    RunNetsimThroughput));

}  // namespace
}  // namespace wsn::scenario
