#include "scenario/harness.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace wsn::scenario {

namespace {

constexpr const char* kJournalSchema = "wsn-journal-v1";

const std::string& RequireString(const util::JsonValue& record,
                                 const std::string& key) {
  const util::JsonValue* v = record.Find(key);
  util::Require(v != nullptr && v->is_string(),
                "journal record missing string field '" + key + "'");
  return v->AsString();
}

std::uint64_t RequireUInt(const util::JsonValue& record,
                          const std::string& key) {
  const util::JsonValue* v = record.Find(key);
  util::Require(v != nullptr && v->is_number(),
                "journal record missing numeric field '" + key + "'");
  const double n = v->AsNumber();
  util::Require(n >= 0 && n == std::floor(n),
                "journal record field '" + key + "' is not a whole number");
  return static_cast<std::uint64_t>(n);
}

/// Inverse of WorkerFailureName, for re-raising journaled/stringified
/// failures with their taxonomy code intact.
util::WorkerFailure FailureFromName(const std::string& name) {
  using F = util::WorkerFailure;
  for (const F f : {F::kSignal, F::kNonZeroExit, F::kTimeout, F::kOom,
                    F::kMalformedResult}) {
    if (name == util::WorkerFailureName(f)) return f;
  }
  return F::kNone;
}

}  // namespace

std::string EncodeCells(const std::vector<std::string>& cells) {
  util::JsonWriter w(0);
  w.BeginArray();
  for (const std::string& cell : cells) w.String(cell);
  w.EndArray();
  return w.Str();
}

std::vector<std::string> DecodeCells(const std::string& payload) {
  const util::JsonValue doc = util::ParseJson(payload);
  util::Require(doc.is_array(), "journal payload is not a JSON array");
  std::vector<std::string> cells;
  cells.reserve(doc.Items().size());
  for (const util::JsonValue& item : doc.Items()) {
    util::Require(item.is_string(), "journal payload cell is not a string");
    cells.push_back(item.AsString());
  }
  return cells;
}

PointHarness::PointHarness(const HarnessOptions& options,
                           const std::string& run_id_hex,
                           util::ParallelExecutor& inline_executor)
    : options_(options),
      run_id_(run_id_hex),
      inline_executor_(&inline_executor) {
  util::Require(!options_.resume || !options_.journal_path.empty(),
                "--resume requires --journal PATH");
  if (options_.journal_path.empty()) return;
  util::RequireWritableDir(options_.journal_path, "--journal");
  if (options_.resume) LoadJournal();
  // Without --resume a fresh run owns the file: truncate, don't append
  // stale records from an unrelated earlier run.
  const int flags =
      O_WRONLY | O_CREAT | (options_.resume ? O_APPEND : O_TRUNC);
  journal_fd_ = ::open(options_.journal_path.c_str(), flags, 0644);
  if (journal_fd_ < 0) {
    throw util::Error("--journal: cannot open '" + options_.journal_path +
                      "' (" + std::strerror(errno) + ")");
  }
}

PointHarness::~PointHarness() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

void PointHarness::LoadJournal() {
  std::ifstream in(options_.journal_path, std::ios::binary);
  if (!in) return;  // nothing completed yet: resume from zero
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const bool last = in.peek() == std::ifstream::traits_type::eof();
    util::JsonValue record;
    try {
      record = util::ParseJson(line);
      util::Require(RequireString(record, "schema") == kJournalSchema,
                    "unknown journal schema");
    } catch (const std::exception& e) {
      // A torn final line is the expected signature of the crash being
      // resumed from — the record fsync'd before it is still intact.
      // Corruption anywhere else means the file is not trustworthy.
      if (last) {
        (util::LogWarn() << "journal: skipping torn final record")
            .Kv("path", options_.journal_path)
            .Kv("line", line_no);
        break;
      }
      throw util::Error("--resume: corrupt journal record at " +
                        options_.journal_path + ":" +
                        std::to_string(line_no) + " (" + e.what() + ")");
    }
    const std::string& run = RequireString(record, "run");
    if (run != run_id_) {
      throw util::Error(
          "--resume: journal '" + options_.journal_path +
          "' was written by a different run configuration (journal run id " +
          run + ", this run " + run_id_ +
          "); pass a fresh --journal path or re-run the original command "
          "line");
    }
    JournalEntry entry;
    const std::string& status = RequireString(record, "status");
    if (status == "ok") {
      entry.ok = true;
      entry.payload = RequireString(record, "payload");
      const std::string& want = RequireString(record, "hash");
      const std::string got = util::HexU64(util::Fnv1a64(entry.payload));
      if (want != got) {
        throw util::Error("--resume: journal payload hash mismatch at " +
                          options_.journal_path + ":" +
                          std::to_string(line_no) + " (recorded " + want +
                          ", payload hashes to " + got + ")");
      }
    } else if (status == "error") {
      entry.ok = false;
      entry.failure = RequireString(record, "failure");
      entry.attempts = static_cast<std::size_t>(RequireUInt(record, "attempts"));
      entry.detail = RequireString(record, "detail");
    } else {
      throw util::Error("--resume: journal record with unknown status '" +
                        status + "' at " + options_.journal_path + ":" +
                        std::to_string(line_no));
    }
    // Later records win: a --keep-going error row re-run to success on a
    // previous resume appears twice, and the success must stick.
    completed_[RequireString(record, "point")] = std::move(entry);
  }
}

void PointHarness::AppendRecord(const std::string& key, std::uint64_t seed,
                                const JournalEntry& entry) {
  if (journal_fd_ < 0) return;
  util::JsonWriter w(0);
  w.BeginObject();
  w.Key("schema").String(kJournalSchema);
  w.Key("run").String(run_id_);
  w.Key("point").String(key);
  w.Key("seed").UInt(seed);
  w.Key("status").String(entry.ok ? "ok" : "error");
  if (entry.ok) {
    w.Key("payload").String(entry.payload);
    w.Key("hash").String(util::HexU64(util::Fnv1a64(entry.payload)));
  } else {
    w.Key("failure").String(entry.failure);
    w.Key("attempts").UInt(entry.attempts);
    w.Key("detail").String(entry.detail);
  }
  w.EndObject();
  const std::string line = w.Str() + "\n";
  const char* data = line.data();
  std::size_t size = line.size();
  while (size > 0) {
    const ssize_t n = ::write(journal_fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::Error("--journal: write to '" + options_.journal_path +
                        "' failed (" + std::strerror(errno) + ")");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  // One fsync per record is the durability contract: a SIGKILL at any
  // instant loses at most the point in flight, never a completed one.
  if (::fsync(journal_fd_) != 0) {
    throw util::Error("--journal: fsync of '" + options_.journal_path +
                      "' failed (" + std::strerror(errno) + ")");
  }
}

PointOutcome PointHarness::Execute(const std::string& key, const PointFn& fn) {
  PointOutcome outcome;
  if (!Isolating()) {
    PointEnv env;
    env.executor = inline_executor_;
    outcome.payload = fn(env);
    outcome.ok = true;
    return outcome;
  }
  util::WorkerLimits limits;
  limits.deadline_s = options_.deadline_s;
  limits.rss_limit_mb = options_.rss_limit_mb;
  util::RetryPolicy policy;
  policy.max_attempts = options_.retries + 1;
  policy.base_backoff_s = options_.backoff_s;
  policy.backoff_growth = options_.backoff_growth;
  const std::size_t threads = options_.threads;
  const util::WorkerResult result = util::RunWithRetry(
      [&fn, threads](std::size_t attempt) {
        // Forked child: the parent's pool threads do not exist here, so
        // replication fan-out needs a pool of its own.
        util::ParallelExecutor child_executor(threads);
        PointEnv env;
        env.executor = &child_executor;
        env.attempt = attempt;
        env.isolated = true;
        return fn(env);
      },
      limits, policy,
      [this, &key, &policy](std::size_t attempt,
                            const util::WorkerResult& failed) {
        if (attempt + 1 < policy.max_attempts) {
          ++retries_;
          (util::LogWarn() << "point failed; retrying")
              .Kv("point", key)
              .Kv("attempt", attempt + 1)
              .Kv("failure", failed.Describe());
        }
      });
  outcome.attempts = policy.max_attempts;
  if (result.Ok()) {
    outcome.ok = true;
    outcome.payload = result.payload;
  } else {
    outcome.failure = util::WorkerFailureName(result.failure);
    outcome.detail = result.Describe();
  }
  return outcome;
}

PointOutcome PointHarness::RunPoint(const std::string& key, std::uint64_t seed,
                                    const PointFn& fn) {
  const auto it = completed_.find(key);
  if (it != completed_.end()) {
    ++replayed_;
    PointOutcome outcome;
    outcome.replayed = true;
    outcome.ok = it->second.ok;
    if (it->second.ok) {
      outcome.payload = it->second.payload;
    } else {
      // A journaled failure replays verbatim (same taxonomy, attempts
      // and detail): resume reproduces the interrupted run's output
      // byte for byte, it does not silently re-try the point.
      outcome.failure = it->second.failure;
      outcome.detail = it->second.detail;
      outcome.attempts = it->second.attempts;
      ++failed_;
      ++failure_kinds_[it->second.failure];
      failures_.push_back(
          {key, it->second.failure, it->second.attempts, it->second.detail});
      if (!options_.keep_going) {
        throw util::WorkerError(
            FailureFromName(it->second.failure),
            "point '" + key + "' failed in the journaled run: " +
                outcome.detail +
                " (re-run without --resume to retry it)");
      }
    }
    return outcome;
  }

  PointOutcome outcome = Execute(key, fn);
  if (outcome.ok) {
    ++executed_;
    JournalEntry entry;
    entry.ok = true;
    entry.payload = outcome.payload;
    AppendRecord(key, seed, entry);
    return outcome;
  }
  ++failed_;
  ++failure_kinds_[outcome.failure];
  failures_.push_back({key, outcome.failure, outcome.attempts, outcome.detail});
  if (!options_.keep_going) {
    throw util::WorkerError(
        FailureFromName(outcome.failure),
        "point '" + key + "' failed after " +
            std::to_string(outcome.attempts) + " attempt" +
            (outcome.attempts == 1 ? "" : "s") + ": " + outcome.detail +
            " (pass --keep-going to record an error row and continue)");
  }
  JournalEntry entry;
  entry.ok = false;
  entry.failure = outcome.failure;
  entry.attempts = outcome.attempts;
  entry.detail = outcome.detail;
  AppendRecord(key, seed, entry);
  return outcome;
}

std::map<std::string, std::uint64_t> PointHarness::Counters() const {
  std::map<std::string, std::uint64_t> counters;
  counters["harness.points.executed"] = executed_;
  counters["harness.points.replayed"] = replayed_;
  counters["harness.points.failed"] = failed_;
  counters["harness.worker.retries"] = retries_;
  for (const auto& [kind, count] : failure_kinds_) {
    counters["harness.worker.failures." + kind] = count;
  }
  return counters;
}

void RunPointRow(const ScenarioContext& ctx, ResultTable& table,
                 const std::string& key, std::uint64_t seed,
                 const std::string& label,
                 const std::function<std::vector<std::string>(
                     const ScenarioContext&, const PointEnv&)>& fn) {
  if (ctx.harness == nullptr) {
    PointEnv env;
    env.executor = ctx.executor;
    table.AddRow(fn(ctx, env));
    return;
  }
  const std::size_t width = table.headers.size();
  const bool isolating = ctx.harness->Isolating();
  const PointOutcome outcome = ctx.harness->RunPoint(
      key, seed, [&ctx, &fn, width, isolating](const PointEnv& env) {
        ScenarioContext sub = ctx;
        sub.executor = env.executor;
        sub.harness = nullptr;
        // A forked worker cannot contribute to the parent's obs session;
        // metrics cover inline-executed points only (docs/robustness.md).
        if (isolating) sub.obs = nullptr;
        const std::vector<std::string> cells = fn(sub, env);
        util::Require(cells.size() == width,
                      "point produced " + std::to_string(cells.size()) +
                          " cells for a " + std::to_string(width) +
                          "-column table");
        return EncodeCells(cells);
      });
  if (outcome.ok) {
    table.AddRow(DecodeCells(outcome.payload));
    return;
  }
  // --keep-going degraded row: the sweep shape is preserved and the
  // failure is explicit in the output, not just on stderr.
  std::vector<std::string> row(width, "-");
  row[0] = label;
  if (width > 1) {
    row[1] = "error: " + outcome.failure + " (" +
             std::to_string(outcome.attempts) + " attempt" +
             (outcome.attempts == 1 ? "" : "s") + ")";
  }
  table.AddRow(row);
}

}  // namespace wsn::scenario
