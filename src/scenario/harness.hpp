/// \file
/// The sweep-point harness: crash isolation, deadlines/retry, the
/// durable run journal and --resume replay — the execution layer under
/// `wsnctl run` that makes a multi-hour sweep survive one bad point.
///
/// A *point* is the unit of isolation and journaling: one sweep cell
/// (one parameter combination) identified by a stable string key.  A
/// study runs each point through PointHarness::RunPoint, which
///   1. on --resume, replays the journaled payload byte-for-byte and
///      skips execution entirely;
///   2. otherwise runs the point — inline when no isolation feature is
///      on (zero-cost-when-off), or in a forked worker under the
///      deadline/RSS fence with the retry policy;
///   3. appends one fsync'd JSONL record to the journal, so a SIGKILL
///      at any instant loses at most the point in flight.
///
/// Journal record schema ("wsn-journal-v1", one compact JSON object per
/// line — see docs/robustness.md):
///   {"schema":"wsn-journal-v1","run":"<16-hex config hash>",
///    "point":"<key>","seed":<n>,"status":"ok",
///    "payload":"<rendered cells>","hash":"<16-hex FNV of payload>"}
/// or, for a point that exhausted its attempts under --keep-going:
///   {... "status":"error","failure":"<taxonomy name>",
///    "attempts":<n>,"detail":"<...>"}
///
/// Because a worker is a forked child, the parent's thread pool does
/// not exist there: isolated point functions receive a PointEnv whose
/// executor is a FRESH pool constructed inside the child, never the
/// parent's.  RunPointRow packages the common study shape (one point =
/// one table row, cells encoded as a JSON string array) including the
/// --keep-going error-row rendering.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scenario/result.hpp"
#include "scenario/scenario.hpp"
#include "util/executor.hpp"
#include "util/subproc.hpp"

namespace wsn::scenario {

/// Harness configuration, straight from the wsnctl global flags.
struct HarnessOptions {
  bool isolate = false;          ///< --isolate: fork a worker per point
  double deadline_s = 0.0;       ///< --deadline (implies isolation)
  std::size_t rss_limit_mb = 0;  ///< --rss-limit (implies isolation)
  std::size_t retries = 0;       ///< --retries (implies isolation)
  double backoff_s = 0.25;       ///< --backoff: first retry delay
  double backoff_growth = 2.0;   ///< retry delay multiplier
  bool keep_going = false;       ///< --keep-going: error rows, not aborts
  std::string journal_path;      ///< --journal PATH ("" = off)
  bool resume = false;           ///< --resume: replay completed points
  std::size_t threads = 0;       ///< child executor width (0 = hardware)

  /// Any flag that needs a forked worker turns isolation on.
  bool Isolating() const {
    return isolate || deadline_s > 0.0 || rss_limit_mb > 0 || retries > 0;
  }
};

/// What a point function runs under.
struct PointEnv {
  /// The executor to fan replication work through.  Inline: the driver's
  /// executor.  Isolated: a fresh pool built inside the forked child
  /// (the parent's pool threads do not survive fork()).
  util::ParallelExecutor* executor = nullptr;
  std::size_t attempt = 0;  ///< 0 on the first try, 1.. on retries
  bool isolated = false;    ///< running inside a forked worker
};

/// One point's work: produce the payload string (for studies, the
/// JSON-encoded row cells) deterministically from its inputs.
using PointFn = std::function<std::string(const PointEnv&)>;

/// Result of RunPoint.
struct PointOutcome {
  bool ok = false;
  bool replayed = false;  ///< payload came from the journal, not execution
  std::string payload;
  std::string failure;  ///< taxonomy name when !ok ("" otherwise)
  std::string detail;
  std::size_t attempts = 1;
};

/// One exhausted point, for the "harness-errors" table and exit code 3.
struct PointFailure {
  std::string point;
  std::string failure;  ///< taxonomy name
  std::size_t attempts = 1;
  std::string detail;
};

/// Drives every point of one run: owns the journal file and the resume
/// replay map, applies isolation/retry, and accumulates the failure
/// list and counters the driver reports.  Not thread-safe: studies call
/// RunPoint from the sweep loop (parallelism lives *inside* a point,
/// across replications).
class PointHarness {
 public:
  /// `run_id_hex` is the 16-hex FNV hash of the run configuration —
  /// journal records carry it, and --resume refuses a journal written
  /// by a different configuration.  Opens (and on --resume first loads)
  /// the journal; throws on unwritable paths, corrupt records or a
  /// run-id mismatch.
  PointHarness(const HarnessOptions& options, const std::string& run_id_hex,
               util::ParallelExecutor& inline_executor);
  ~PointHarness();
  PointHarness(const PointHarness&) = delete;
  PointHarness& operator=(const PointHarness&) = delete;

  /// Run (or replay) one point.  Throws util::WorkerError when the
  /// point exhausts its attempts and --keep-going is off; with
  /// --keep-going returns an outcome with ok=false instead.
  PointOutcome RunPoint(const std::string& key, std::uint64_t seed,
                        const PointFn& fn);

  bool Isolating() const { return options_.Isolating(); }
  const std::vector<PointFailure>& Failures() const { return failures_; }

  /// Counters for the obs metrics registry and the end-of-run log line:
  /// harness.points.{executed,replayed,failed}, harness.worker.retries,
  /// harness.worker.failures.<taxonomy>.
  std::map<std::string, std::uint64_t> Counters() const;

 private:
  struct JournalEntry {
    bool ok = false;
    std::string payload;          // status ok
    std::string failure;          // status error
    std::size_t attempts = 1;     // status error
    std::string detail;           // status error
  };

  void LoadJournal();
  void AppendRecord(const std::string& key, std::uint64_t seed,
                    const JournalEntry& entry);
  PointOutcome Execute(const std::string& key, const PointFn& fn);

  HarnessOptions options_;
  std::string run_id_;
  util::ParallelExecutor* inline_executor_;
  int journal_fd_ = -1;
  std::map<std::string, JournalEntry> completed_;
  std::vector<PointFailure> failures_;
  std::uint64_t executed_ = 0;
  std::uint64_t replayed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
  std::map<std::string, std::uint64_t> failure_kinds_;
};

/// The study-side idiom: run `fn` as the point named `key` and append
/// its cells to `table`.  With no harness on the context the function
/// runs directly on the driver's executor and the row is appended as-is
/// — byte-for-byte the pre-harness behavior.  With a harness, the cells
/// round-trip through the payload encoding (a compact JSON string
/// array), and a point that fails under --keep-going appends an
/// explicit error row: `label`, "error: <taxonomy> (N attempts)", then
/// "-" for every remaining column.
///
/// `fn` receives a sub-context sharing the parent's args but carrying
/// the PointEnv's executor; under isolation obs is null (a forked
/// child cannot contribute to the parent's session — replayed and
/// isolated points are absent from --metrics, see docs/robustness.md).
void RunPointRow(const ScenarioContext& ctx, ResultTable& table,
                 const std::string& key, std::uint64_t seed,
                 const std::string& label,
                 const std::function<std::vector<std::string>(
                     const ScenarioContext&, const PointEnv&)>& fn);

/// Encode row cells as the journal payload (compact JSON string array).
std::string EncodeCells(const std::vector<std::string>& cells);
/// Inverse of EncodeCells; throws InvalidArgument on malformed payloads.
std::vector<std::string> DecodeCells(const std::string& payload);

}  // namespace wsn::scenario
