#include "scenario/scenario.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wsn::scenario {

namespace {

class LambdaScenario final : public Scenario {
 public:
  LambdaScenario(std::string name, std::string summary, std::string artifact,
                 std::vector<util::FlagSpec> flags,
                 std::function<ResultSet(const ScenarioContext&)> run)
      : name_(std::move(name)),
        summary_(std::move(summary)),
        artifact_(std::move(artifact)),
        flags_(std::move(flags)),
        run_(std::move(run)) {}

  std::string Name() const override { return name_; }
  std::string Summary() const override { return summary_; }
  std::string Artifact() const override { return artifact_; }
  std::vector<util::FlagSpec> Flags() const override { return flags_; }
  ResultSet Run(const ScenarioContext& ctx) const override {
    return run_(ctx);
  }

 private:
  std::string name_;
  std::string summary_;
  std::string artifact_;
  std::vector<util::FlagSpec> flags_;
  std::function<ResultSet(const ScenarioContext&)> run_;
};

}  // namespace

ScenarioRegistry& ScenarioRegistry::Instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::Register(std::unique_ptr<Scenario> scenario) {
  util::Require(scenario != nullptr, "cannot register a null scenario");
  util::Require(Find(scenario->Name()) == nullptr,
                "duplicate scenario name '" + scenario->Name() + "'");
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  for (const auto& s : scenarios_) {
    if (s->Name() == name) return s.get();
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::All() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.get());
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->Name() < b->Name();
            });
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(std::unique_ptr<Scenario> scenario) {
  ScenarioRegistry::Instance().Register(std::move(scenario));
}

std::unique_ptr<Scenario> MakeScenario(
    std::string name, std::string summary, std::string artifact,
    std::vector<util::FlagSpec> flags,
    std::function<ResultSet(const ScenarioContext&)> run) {
  return std::make_unique<LambdaScenario>(std::move(name), std::move(summary),
                                          std::move(artifact),
                                          std::move(flags), std::move(run));
}

}  // namespace wsn::scenario
