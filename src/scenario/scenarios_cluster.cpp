// Registered scenarios for the clustered / heterogeneous network
// workloads: the LEACH-style clustered lifetime study, the mixed
// node-class (SEP-style) deployment with its analytic cross-check, and
// the policy ablation (flat vs static clusters vs rotating clusters)
// where network lifetime depends on protocol choice, not just energy
// bookkeeping.  The clustered and heterogeneous studies are thin
// flag-parsing wrappers over scenario/studies.{hpp,cpp}, shared with
// the declarative spec interpreter.
#include <string>
#include <utility>
#include <vector>

#include "core/models.hpp"
#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "scenario/studies.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace wsn::scenario {
namespace {

GridStudyParams GridParamsFromArgs(const util::CliArgs& args,
                                   std::size_t default_cols,
                                   std::size_t default_rows) {
  GridStudyParams p;
  p.cols = args.GetCount("cols", default_cols, 1);
  p.rows = args.GetCount("rows", default_rows, 1);
  p.spacing_m = args.GetDouble("spacing", 15.0);
  p.hop_m = args.GetDouble("hop", 40.0);
  p.rate_hz = args.GetDouble("rate", 2.0);
  p.battery_mah = args.GetDouble("battery-mah", 0.05);
  p.horizon_s = args.GetDouble("horizon", 2000.0);
  p.sinks = args.GetCount("sinks", 1, 1);
  util::Require(p.sinks <= 4, "flag --sinks must be in 1..4");
  return p;
}

ClusterKnobs ClusterKnobsFromArgs(const util::CliArgs& args) {
  ClusterKnobs knobs;
  knobs.protocol = netsim::ParseClusterProtocolKind(
      args.GetString("protocol", "leach"));
  knobs.head_fraction = args.GetDouble("head-fraction", 0.1);
  knobs.static_heads = args.GetCount("static-heads", 0);
  knobs.round_s = args.GetDouble("round", 25.0);
  knobs.aggregation = args.GetCount("aggregation", 4, 1);
  return knobs;
}

std::vector<util::FlagSpec> GridFlags(const std::string& cols,
                                      const std::string& rows) {
  return {
      {"cols", "C", cols, "grid columns"},
      {"rows", "R", rows, "grid rows"},
      {"spacing", "M", "15", "grid spacing (m)"},
      {"rate", "L", "2", "per-node report rate (1/s)"},
      {"battery-mah", "MAH", "0.05", "per-node battery capacity"},
      {"horizon", "S", "2000", "simulation horizon (s)"},
      {"replications", "R", "8", "independent replications (>= 1)"},
      {"seed", "N", "2008", "master RNG seed (non-negative)"},
  };
}

std::vector<util::FlagSpec> ClusterFlags() {
  return {
      {"protocol", "P", "leach", "clustering protocol: leach or static"},
      {"head-fraction", "F", "0.1", "desired cluster-head fraction (0, 1]"},
      {"static-heads", "K", "0",
       "static protocol head count (0 = head-fraction * nodes)"},
      {"round", "S", "25", "cluster round length (s)"},
      {"aggregation", "K", "4", "member samples per upstream packet (>= 1)"},
      {"sinks", "N", "1", "sink count, 1-4 (placed at deployment corners)"},
  };
}

// ------------------------------------------------------------------------
// netsim-clustered: LEACH-style (or static) clustered collection on a
// node grid — head rotation, in-cluster aggregation, multi-sink uplink.
ResultSet RunNetsimClustered(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  ClusteredStudyParams p;
  p.grid = GridParamsFromArgs(args, 6, 6);
  p.cluster = ClusterKnobsFromArgs(args);
  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 8);
  p.replications = rep.replications;
  p.seed = rep.seed;
  return RunClusteredStudy(ctx, p);
}

// ------------------------------------------------------------------------
// netsim-heterogeneous: a two-class (SEP-style) deployment — a fraction
// of "advanced" nodes with a larger battery among "standard" ones —
// simulated flat with rerouting off so the analytic heterogeneous
// estimator (wsn::Network::Evaluate per-node overload) cross-validates
// the simulated time to first death.
ResultSet RunNetsimHeterogeneous(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  HeterogeneousStudyParams p;
  p.grid = GridParamsFromArgs(args, 6, 4);
  p.advanced_fraction = args.GetDouble("advanced-fraction", 0.2);
  p.battery_factor = args.GetDouble("battery-factor", 3.0);
  p.placement = args.GetString("placement", "hotspot");
  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 16);
  p.replications = rep.replications;
  p.seed = rep.seed;
  return RunHeterogeneousStudy(ctx, p);
}

// ------------------------------------------------------------------------
// cluster-ablation: the same deployment under three collection policies —
// flat greedy multi-hop, static clusters, LEACH-style rotation — showing
// that lifetime is a function of protocol policy.
ResultSet RunClusterAblation(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const GridStudyParams grid = GridParamsFromArgs(args, 6, 6);
  netsim::NetSimConfig base = BuildGridConfig(grid);

  netsim::NetSimConfig flat = base;  // greedy multi-hop, no clustering

  netsim::NetSimConfig leach = base;
  ClusterKnobs knobs = ClusterKnobsFromArgs(args);
  knobs.protocol = netsim::ClusterProtocolKind::kLeach;
  ApplyClusterKnobs(leach, knobs);

  netsim::NetSimConfig still = leach;
  still.cluster.protocol = netsim::ClusterProtocolKind::kStatic;

  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 8);
  const core::MarkovCpuModel model;
  ApplyObs(ctx, flat);
  ApplyObs(ctx, still);
  ApplyObs(ctx, leach);
  const netsim::ReplicationSummary flat_sum =
      RunReplications(flat, model, rep, ctx.Executor());
  const netsim::ReplicationSummary still_sum =
      RunReplications(still, model, rep, ctx.Executor());
  const netsim::ReplicationSummary leach_sum =
      RunReplications(leach, model, rep, ctx.Executor());
  ContributeObs(ctx, flat_sum);
  ContributeObs(ctx, still_sum);
  ContributeObs(ctx, leach_sum);

  ResultSet results(
      "cluster ablation: flat vs static heads vs LEACH-style rotation");
  results.SetMeta("nodes", std::to_string(base.positions.size()));
  results.SetMeta("round", util::FormatFixed(leach.cluster.round_s, 0) + " s");
  results.SetMeta("head fraction",
                  util::FormatFixed(leach.cluster.head_fraction, 2));
  results.SetMeta("aggregation", std::to_string(leach.cluster.aggregation));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& table = results.AddTable(
      "summary", {"policy", "metric", "mean +- 95% CI", "observed in"});
  AddLifetimeRows(table, "flat", flat_sum);
  AddLifetimeRows(table, "static", still_sum);
  AddLifetimeRows(table, "leach", leach_sum);

  ResultTable& verdict = results.AddTable(
      "first-death-ranking", {"policy", "mean first death (s)"});
  verdict.AddRow({"flat", MetricCell(flat_sum.first_death_s, 1)});
  verdict.AddRow({"static", MetricCell(still_sum.first_death_s, 1)});
  verdict.AddRow({"leach", MetricCell(leach_sum.first_death_s, 1)});

  if (leach_sum.first_death_s.observed > 0 &&
      still_sum.first_death_s.observed > 0) {
    const double leach_gain =
        leach_sum.first_death_s.ci.mean / still_sum.first_death_s.ci.mean;
    results.AddNote(
        "rotation gain: LEACH first-node-death is " +
        util::FormatFixed(leach_gain, 2) +
        "x the static-cluster baseline (fixed heads drain first; rotating "
        "the head role spreads the aggregation + uplink cost)");
  } else {
    results.AddNote(
        "no node died before the horizon in at least one policy — raise "
        "--horizon or shrink --battery-mah to compare lifetimes");
  }
  return results;
}

const ScenarioRegistrar reg_netsim_clustered(MakeScenario(
    "netsim-clustered",
    "clustered collection: rotating cluster heads, aggregation, multi-sink",
    "extension (cluster-based workload)",
    [] {
      std::vector<util::FlagSpec> flags = GridFlags("6", "6");
      flags.push_back({"hop", "M", "40", "max radio hop range (m)"});
      for (util::FlagSpec& f : ClusterFlags()) flags.push_back(std::move(f));
      return flags;
    }(),
    RunNetsimClustered));

const ScenarioRegistrar reg_netsim_heterogeneous(MakeScenario(
    "netsim-heterogeneous",
    "mixed node classes (SEP-style) with analytic cross-validation",
    "extension (heterogeneous workload)",
    [] {
      std::vector<util::FlagSpec> flags = GridFlags("6", "4");
      flags.push_back({"hop", "M", "40", "max radio hop range (m)"});
      flags.push_back({"advanced-fraction", "F", "0.2",
                       "fraction of advanced nodes [0, 1]"});
      flags.push_back({"battery-factor", "X", "3",
                       "advanced battery capacity multiplier"});
      flags.push_back({"placement", "P", "hotspot",
                       "advanced-node placement: hotspot (highest analytic "
                       "relay load) or spread (index-strided)"});
      return flags;
    }(),
    RunNetsimHeterogeneous));

const ScenarioRegistrar reg_cluster_ablation(MakeScenario(
    "cluster-ablation",
    "flat vs static clusters vs LEACH rotation on one deployment",
    "extension (protocol-policy ablation)",
    [] {
      std::vector<util::FlagSpec> flags = GridFlags("6", "6");
      flags.push_back({"hop", "M", "40", "max radio hop range (m)"});
      for (util::FlagSpec& f : ClusterFlags()) {
        // The ablation runs every protocol; a --protocol choice would be
        // silently ignored, so it is not part of this vocabulary.
        if (f.name != "protocol") flags.push_back(std::move(f));
      }
      return flags;
    }(),
    RunClusterAblation));

}  // namespace
}  // namespace wsn::scenario
