// Registered scenarios for the clustered / heterogeneous network
// workloads: the LEACH-style clustered lifetime study, the mixed
// node-class (SEP-style) deployment with its analytic cross-check, and
// the policy ablation (flat vs static clusters vs rotating clusters)
// where network lifetime depends on protocol choice, not just energy
// bookkeeping.
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/error.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {
namespace {

// Shared topology/effort knobs for the clustered studies: a node grid
// reporting toward corner sinks with small batteries so every run shows
// the full lifetime arc within a short horizon.
netsim::NetSimConfig GridConfig(const util::CliArgs& args,
                                std::size_t default_cols,
                                std::size_t default_rows) {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = args.GetDouble("rate", 2.0);
  cfg.network.node.cpu.service_rate =
      10.0 * cfg.network.node.cpu.arrival_rate;
  cfg.network.node.cpu_power = energy::Msp430();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = args.GetDouble("battery-mah", 0.05);
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = args.GetDouble("hop", 40.0);
  const std::size_t cols = args.GetCount("cols", default_cols, 1);
  const std::size_t rows = args.GetCount("rows", default_rows, 1);
  const double spacing = args.GetDouble("spacing", 15.0);
  cfg.positions = node::MakeGrid(cols, rows, spacing);
  cfg.horizon_s = args.GetDouble("horizon", 2000.0);

  // Optional extra sinks at the deployment corners (the default single
  // sink sits at the origin corner).
  const std::size_t sink_count = args.GetCount("sinks", 1, 1);
  util::Require(sink_count <= 4, "flag --sinks must be in 1..4");
  const double x_max = (static_cast<double>(cols) + 1.0) * spacing;
  const double y_max = (static_cast<double>(rows) + 1.0) * spacing;
  if (sink_count >= 2) cfg.sinks = {{0.0, 0.0}, {x_max, y_max}};
  if (sink_count >= 3) cfg.sinks.push_back({x_max, 0.0});
  if (sink_count >= 4) cfg.sinks.push_back({0.0, y_max});
  return cfg;
}

void ApplyClusterFlags(netsim::NetSimConfig& cfg, const util::CliArgs& args) {
  cfg.cluster.protocol = netsim::ParseClusterProtocolKind(
      args.GetString("protocol", "leach"));
  cfg.cluster.head_fraction = args.GetDouble("head-fraction", 0.1);
  cfg.cluster.static_heads = args.GetCount("static-heads", 0);
  cfg.cluster.round_s = args.GetDouble("round", 25.0);
  cfg.cluster.aggregation = args.GetCount("aggregation", 4, 1);
}

/// Mean of a per-report extractor over all replications.
template <typename Fn>
double MeanOverReports(const netsim::ReplicationSummary& summary, Fn&& fn) {
  util::RunningStats stats;
  for (const netsim::NetSimReport& report : summary.reports) {
    stats.Add(fn(report));
  }
  return stats.Mean();
}

void AddLifetimeRows(ResultTable& table, const std::string& label,
                     const netsim::ReplicationSummary& summary) {
  table.AddRow({label, "time to first death (s)",
                MetricCell(summary.first_death_s, 1),
                ObservedCell(summary.first_death_s.observed,
                             summary.replications)});
  table.AddRow({label, "time to partition (s)",
                MetricCell(summary.partition_s, 1),
                ObservedCell(summary.partition_s.observed,
                             summary.replications)});
  table.AddRow({label, "delivery ratio", MetricCell(summary.delivery_ratio, 4),
                ObservedCell(summary.replications, summary.replications)});
  table.AddRow({label, "samples delivered", MetricCell(summary.delivered, 1),
                ObservedCell(summary.replications, summary.replications)});
}

std::vector<util::FlagSpec> GridFlags(const std::string& cols,
                                      const std::string& rows) {
  return {
      {"cols", "C", cols, "grid columns"},
      {"rows", "R", rows, "grid rows"},
      {"spacing", "M", "15", "grid spacing (m)"},
      {"rate", "L", "2", "per-node report rate (1/s)"},
      {"battery-mah", "MAH", "0.05", "per-node battery capacity"},
      {"horizon", "S", "2000", "simulation horizon (s)"},
      {"replications", "R", "8", "independent replications (>= 1)"},
      {"seed", "N", "2008", "master RNG seed (non-negative)"},
  };
}

std::vector<util::FlagSpec> ClusterFlags() {
  return {
      {"protocol", "P", "leach", "clustering protocol: leach or static"},
      {"head-fraction", "F", "0.1", "desired cluster-head fraction (0, 1]"},
      {"static-heads", "K", "0",
       "static protocol head count (0 = head-fraction * nodes)"},
      {"round", "S", "25", "cluster round length (s)"},
      {"aggregation", "K", "4", "member samples per upstream packet (>= 1)"},
      {"sinks", "N", "1", "sink count, 1-4 (placed at deployment corners)"},
  };
}

// ------------------------------------------------------------------------
// netsim-clustered: LEACH-style (or static) clustered collection on a
// node grid — head rotation, in-cluster aggregation, multi-sink uplink.
ResultSet RunNetsimClustered(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  netsim::NetSimConfig cfg = GridConfig(args, 6, 6);
  ApplyClusterFlags(cfg, args);

  netsim::ReplicationConfig rep = NetsimRepConfig(args, 8);
  rep.keep_reports = true;  // the rotation/head tables read the reports
  ApplyObs(ctx, cfg);
  const core::MarkovCpuModel model;
  const netsim::ReplicationSummary summary =
      RunReplications(cfg, model, rep, ctx.Executor());
  ContributeObs(ctx, summary);

  ResultSet results(
      "clustered collection: rotating heads, aggregation, multi-sink");
  results.SetMeta("nodes", std::to_string(cfg.positions.size()));
  results.SetMeta("sinks",
                  std::to_string(netsim::EffectiveSinks(cfg).size()));
  results.SetMeta("protocol",
                  netsim::ClusterProtocolKindName(cfg.cluster.protocol));
  results.SetMeta("round", util::FormatFixed(cfg.cluster.round_s, 0) + " s");
  results.SetMeta("aggregation", std::to_string(cfg.cluster.aggregation));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& lifetimes = results.AddTable(
      "summary", {"protocol", "metric", "mean +- 95% CI", "observed in"});
  AddLifetimeRows(lifetimes,
                  netsim::ClusterProtocolKindName(cfg.cluster.protocol),
                  summary);
  ResultTable& rotation = results.AddTable(
      "rotation", {"metric", "mean over replications"});
  rotation.AddRow({"cluster rounds",
                   util::FormatFixed(
                       MeanOverReports(summary,
                                       [](const netsim::NetSimReport& r) {
                                         return static_cast<double>(r.rounds);
                                       }),
                       2)});
  rotation.AddRow(
      {"elections (rounds + repairs)",
       util::FormatFixed(
           MeanOverReports(summary,
                           [](const netsim::NetSimReport& r) {
                             return static_cast<double>(r.elections);
                           }),
           2)});
  rotation.AddRow(
      {"distinct nodes elected head",
       util::FormatFixed(
           MeanOverReports(
               summary,
               [](const netsim::NetSimReport& r) {
                 std::size_t distinct = 0;
                 for (const netsim::NodeSimStats& n : r.nodes) {
                   if (n.head_elections > 0) ++distinct;
                 }
                 return static_cast<double>(distinct);
               }),
           2)});

  // Zoom into replication 0: who served as head and what it cost them.
  const netsim::NetSimReport& rep0 = summary.reports.front();
  ResultTable& heads = results.AddTable(
      "replication-0-heads",
      {"node", "head elections", "samples aggregated", "energy (J)",
       "death (s)"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < rep0.nodes.size() && shown < 10; ++i) {
    const netsim::NodeSimStats& n = rep0.nodes[i];
    if (n.head_elections == 0) continue;
    ++shown;
    heads.AddRow({std::to_string(i), std::to_string(n.head_elections),
                  std::to_string(n.aggregated),
                  util::FormatFixed(n.energy_used_j, 3),
                  std::isfinite(n.death_s) ? util::FormatFixed(n.death_s, 1)
                                           : std::string("alive")});
  }

  ResultTable& drops =
      results.AddTable("replication-0-drops", {"drop reason", "samples"});
  for (std::size_t r = 0; r < netsim::kDropReasonCount; ++r) {
    const auto reason = static_cast<netsim::DropReason>(r);
    drops.AddRow({netsim::DropReasonName(reason),
                  std::to_string(rep0.packets.Dropped(reason))});
  }
  results.AddNote("replication 0: generated " +
                  std::to_string(rep0.packets.generated) + ", delivered " +
                  std::to_string(rep0.packets.delivered) + " samples over " +
                  std::to_string(rep0.rounds) + " rounds (" +
                  std::to_string(rep0.elections) + " elections), " +
                  std::to_string(rep0.events) + " events");
  return results;
}

// ------------------------------------------------------------------------
// netsim-heterogeneous: a two-class (SEP-style) deployment — a fraction
// of "advanced" nodes with a larger battery among "standard" ones —
// simulated flat with rerouting off so the analytic heterogeneous
// estimator (wsn::Network::Evaluate per-node overload) cross-validates
// the simulated time to first death.
ResultSet RunNetsimHeterogeneous(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const double advanced_fraction = args.GetDouble("advanced-fraction", 0.2);
  const double battery_factor = args.GetDouble("battery-factor", 3.0);
  util::Require(advanced_fraction >= 0.0 && advanced_fraction <= 1.0,
                "advanced fraction must be in [0, 1]");
  util::Require(battery_factor > 0.0, "battery factor must be positive");

  netsim::NetSimConfig cfg = GridConfig(args, 6, 4);
  cfg.rerouting = false;
  cfg.stop_at_first_death = true;

  // Named hardware profiles: "advanced" nodes carry battery_factor times
  // the standard battery.
  netsim::NodeClass standard;
  standard.name = "standard";
  standard.battery_mah = cfg.network.node.battery_mah;
  standard.battery_volts = cfg.network.node.battery_volts;
  standard.radio = cfg.network.node.radio;
  standard.listen_duty_cycle = cfg.network.node.listen_duty_cycle;
  netsim::NodeClass advanced = standard;
  advanced.name = "advanced";
  advanced.battery_mah = standard.battery_mah * battery_factor;

  cfg.classes = {standard, advanced};
  const std::size_t n = cfg.positions.size();
  const std::size_t advanced_count = static_cast<std::size_t>(
      std::lround(advanced_fraction * static_cast<double>(n)));
  cfg.node_class.assign(n, "standard");

  const core::MarkovCpuModel model;
  const node::Network analytic_net(cfg.network, cfg.positions);
  const node::NetworkReport analytic_homo = analytic_net.Evaluate(model);

  const std::string placement = args.GetString("placement", "hotspot");
  if (advanced_count > 0 && placement == "hotspot") {
    // Give the big batteries to the nodes the analytic estimator says
    // carry the most relay traffic — the hot path near the sink.  This
    // is where per-node hardware actually moves the first-death time.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double la = analytic_homo.nodes[a].relay_packets_per_second;
      const double lb = analytic_homo.nodes[b].relay_packets_per_second;
      if (la != lb) return la > lb;
      return a < b;
    });
    for (std::size_t j = 0; j < advanced_count; ++j) {
      cfg.node_class[order[j]] = "advanced";
    }
  } else if (advanced_count > 0 && placement == "spread") {
    // Evenly strided across the index order, blind to load.
    for (std::size_t j = 0; j < advanced_count; ++j) {
      const std::size_t pick = (j * n + n / 2) / advanced_count;
      cfg.node_class[std::min(pick, n - 1)] = "advanced";
    }
  } else {
    util::Require(placement == "hotspot" || placement == "spread",
                  "placement must be hotspot or spread");
  }

  netsim::NetSimConfig homogeneous = cfg;
  homogeneous.classes.clear();
  homogeneous.node_class.clear();

  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 16);
  ApplyObs(ctx, cfg);
  ApplyObs(ctx, homogeneous);
  const netsim::ReplicationSummary hetero =
      RunReplications(cfg, model, rep, ctx.Executor());
  const netsim::ReplicationSummary homo =
      RunReplications(homogeneous, model, rep, ctx.Executor());
  ContributeObs(ctx, hetero);
  ContributeObs(ctx, homo);

  // Analytic cross-check on the identical topology and per-node hardware.
  const node::NetworkReport analytic_hetero =
      analytic_net.Evaluate(model, netsim::PerNodeConfigs(cfg));

  ResultSet results(
      "heterogeneous node classes: mixed batteries vs the analytic "
      "estimator");
  results.SetMeta("nodes", std::to_string(n));
  results.SetMeta("advanced nodes", std::to_string(advanced_count));
  results.SetMeta("placement", placement);
  results.SetMeta("battery factor", util::FormatFixed(battery_factor, 2));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& table = results.AddTable(
      "first-death",
      {"deployment", "simulated first death (s)", "analytic first death (s)",
       "relative error"});
  const auto row = [&](const std::string& label,
                       const netsim::ReplicationSummary& summary,
                       const node::NetworkReport& analytic) {
    // No observed death before the horizon means there is nothing to
    // compare against the analytic lifetime.
    std::string error_cell = "n/a";
    if (summary.first_death_s.observed > 0) {
      const double mean = summary.first_death_s.ci.mean;
      const double rel = std::abs(mean - analytic.network_lifetime_seconds) /
                         analytic.network_lifetime_seconds;
      error_cell = util::FormatFixed(100.0 * rel, 2) + " %";
    }
    table.AddRow({label, MetricCell(summary.first_death_s, 1),
                  util::FormatFixed(analytic.network_lifetime_seconds, 1),
                  error_cell});
  };
  row("homogeneous (all standard)", homo, analytic_homo);
  row("heterogeneous (" + std::to_string(advanced_count) + " advanced)",
      hetero, analytic_hetero);

  ResultTable& verdict = results.AddTable(
      "lifetime-gain", {"metric", "value"});
  const bool both_died = hetero.first_death_s.observed > 0 &&
                         homo.first_death_s.observed > 0;
  verdict.AddRow(
      {"first-death gain (hetero / homo)",
       both_died ? util::FormatFixed(hetero.first_death_s.ci.mean /
                                         homo.first_death_s.ci.mean,
                                     3)
                 : std::string("n/a")});
  verdict.AddRow({"analytic bottleneck node (hetero)",
                  std::to_string(analytic_hetero.bottleneck_node)});
  results.AddNote(
      "rerouting is disabled and traffic is steady Poisson, so the "
      "simulated first death is directly comparable to the analytic "
      "per-node estimate — the heterogeneous counterpart of the "
      "test_netsim convergence anchor (the first death is a minimum over "
      "nodes, so with several near-tied lifetimes the simulated mean sits "
      "slightly below the analytic value)");
  return results;
}

// ------------------------------------------------------------------------
// cluster-ablation: the same deployment under three collection policies —
// flat greedy multi-hop, static clusters, LEACH-style rotation — showing
// that lifetime is a function of protocol policy.
ResultSet RunClusterAblation(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  netsim::NetSimConfig base = GridConfig(args, 6, 6);

  netsim::NetSimConfig flat = base;  // greedy multi-hop, no clustering

  netsim::NetSimConfig leach = base;
  ApplyClusterFlags(leach, args);
  leach.cluster.protocol = netsim::ClusterProtocolKind::kLeach;

  netsim::NetSimConfig still = leach;
  still.cluster.protocol = netsim::ClusterProtocolKind::kStatic;

  const netsim::ReplicationConfig rep = NetsimRepConfig(args, 8);
  const core::MarkovCpuModel model;
  ApplyObs(ctx, flat);
  ApplyObs(ctx, still);
  ApplyObs(ctx, leach);
  const netsim::ReplicationSummary flat_sum =
      RunReplications(flat, model, rep, ctx.Executor());
  const netsim::ReplicationSummary still_sum =
      RunReplications(still, model, rep, ctx.Executor());
  const netsim::ReplicationSummary leach_sum =
      RunReplications(leach, model, rep, ctx.Executor());
  ContributeObs(ctx, flat_sum);
  ContributeObs(ctx, still_sum);
  ContributeObs(ctx, leach_sum);

  ResultSet results(
      "cluster ablation: flat vs static heads vs LEACH-style rotation");
  results.SetMeta("nodes", std::to_string(base.positions.size()));
  results.SetMeta("round", util::FormatFixed(leach.cluster.round_s, 0) + " s");
  results.SetMeta("head fraction",
                  util::FormatFixed(leach.cluster.head_fraction, 2));
  results.SetMeta("aggregation", std::to_string(leach.cluster.aggregation));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));

  ResultTable& table = results.AddTable(
      "summary", {"policy", "metric", "mean +- 95% CI", "observed in"});
  AddLifetimeRows(table, "flat", flat_sum);
  AddLifetimeRows(table, "static", still_sum);
  AddLifetimeRows(table, "leach", leach_sum);

  ResultTable& verdict = results.AddTable(
      "first-death-ranking", {"policy", "mean first death (s)"});
  verdict.AddRow({"flat", MetricCell(flat_sum.first_death_s, 1)});
  verdict.AddRow({"static", MetricCell(still_sum.first_death_s, 1)});
  verdict.AddRow({"leach", MetricCell(leach_sum.first_death_s, 1)});

  if (leach_sum.first_death_s.observed > 0 &&
      still_sum.first_death_s.observed > 0) {
    const double leach_gain =
        leach_sum.first_death_s.ci.mean / still_sum.first_death_s.ci.mean;
    results.AddNote(
        "rotation gain: LEACH first-node-death is " +
        util::FormatFixed(leach_gain, 2) +
        "x the static-cluster baseline (fixed heads drain first; rotating "
        "the head role spreads the aggregation + uplink cost)");
  } else {
    results.AddNote(
        "no node died before the horizon in at least one policy — raise "
        "--horizon or shrink --battery-mah to compare lifetimes");
  }
  return results;
}

const ScenarioRegistrar reg_netsim_clustered(MakeScenario(
    "netsim-clustered",
    "clustered collection: rotating cluster heads, aggregation, multi-sink",
    "extension (cluster-based workload)",
    [] {
      std::vector<util::FlagSpec> flags = GridFlags("6", "6");
      flags.push_back({"hop", "M", "40", "max radio hop range (m)"});
      for (util::FlagSpec& f : ClusterFlags()) flags.push_back(std::move(f));
      return flags;
    }(),
    RunNetsimClustered));

const ScenarioRegistrar reg_netsim_heterogeneous(MakeScenario(
    "netsim-heterogeneous",
    "mixed node classes (SEP-style) with analytic cross-validation",
    "extension (heterogeneous workload)",
    [] {
      std::vector<util::FlagSpec> flags = GridFlags("6", "4");
      flags.push_back({"hop", "M", "40", "max radio hop range (m)"});
      flags.push_back({"advanced-fraction", "F", "0.2",
                       "fraction of advanced nodes [0, 1]"});
      flags.push_back({"battery-factor", "X", "3",
                       "advanced battery capacity multiplier"});
      flags.push_back({"placement", "P", "hotspot",
                       "advanced-node placement: hotspot (highest analytic "
                       "relay load) or spread (index-strided)"});
      return flags;
    }(),
    RunNetsimHeterogeneous));

const ScenarioRegistrar reg_cluster_ablation(MakeScenario(
    "cluster-ablation",
    "flat vs static clusters vs LEACH rotation on one deployment",
    "extension (protocol-policy ablation)",
    [] {
      std::vector<util::FlagSpec> flags = GridFlags("6", "6");
      flags.push_back({"hop", "M", "40", "max radio hop range (m)"});
      for (util::FlagSpec& f : ClusterFlags()) {
        // The ablation runs every protocol; a --protocol choice would be
        // silently ignored, so it is not part of this vocabulary.
        if (f.name != "protocol") flags.push_back(std::move(f));
      }
      return flags;
    }(),
    RunClusterAblation));

}  // namespace
}  // namespace wsn::scenario
