/// \file
/// Shared configuration helpers for the registered scenarios — the single
/// home of the paper's Table 2 parameters and the validated effort knobs
/// that used to be duplicated across nine bench_* mains.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/params.hpp"
#include "netsim/replication.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"

namespace wsn::scenario {

/// Paper Table 2: 1000 s horizon, lambda = 1/s, mean service 0.1 s
/// (see DESIGN.md section 5 for the Table 2 reading).
core::CpuParams PaperParams();

/// The paper evaluates energy over the 1000 s simulated horizon.
inline constexpr double kEnergyHorizonSeconds = 1000.0;

/// Simulation effort knobs (--sim-time, --replications, --seed), with
/// the validation the old bench_common lacked: replications >= 1 and a
/// non-negative seed, rejected before any unsigned cast.  Model-internal
/// replication threading is pinned to 1: scenario parallelism happens at
/// the sweep-grid level, through the scenario's ParallelExecutor.
core::EvalConfig EvalConfigFromArgs(const util::CliArgs& args);

/// Sweep resolution (--points), validated >= 2.
std::size_t SweepPointsFromArgs(const util::CliArgs& args);

/// FlagSpecs for the knobs above, shared by every sweep scenario.
std::vector<util::FlagSpec> CommonEvalFlags();

/// FlagSpec for --points.
util::FlagSpec PointsFlag();

/// Netsim replication effort knobs (--replications, --seed), shared by
/// every netsim scenario.  Callers opting into per-replication reports
/// set `keep_reports` on the result themselves.
netsim::ReplicationConfig NetsimRepConfig(const util::CliArgs& args,
                                          std::size_t default_reps);

/// "k/n reps" observation cell for replication summary tables.
std::string ObservedCell(std::size_t observed, std::size_t total);

/// "mean +- half_width" cell for a replication metric, or "n/a" when the
/// metric was observed in no replication (no death / no partition).
std::string MetricCell(const netsim::MetricSummary& metric, int precision);

/// Turn on the wsnctl observability session's switches (--metrics /
/// --trace) for one netsim run.  No-op when no session is active, so
/// the config keeps its zero-overhead defaults.
void ApplyObs(const ScenarioContext& ctx, netsim::NetSimConfig& config);

/// Contribute a finished replication batch's merged metrics snapshot and
/// concatenated trace to the session.  No-op when no session is active.
void ContributeObs(const ScenarioContext& ctx,
                   const netsim::ReplicationSummary& summary);

}  // namespace wsn::scenario
