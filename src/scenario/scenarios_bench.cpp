// Registered hot-path benchmark scenario: the BENCH_hotpath.json
// producer that starts the repo's performance trajectory (ISSUE 3).
//
// Three sections, each a table in the ResultSet:
//   * kernel    — DES event throughput of the slab/InlineAction kernel
//                 vs an in-file "legacy" reference that reproduces the
//                 pre-PR path (std::function actions in an unordered_map
//                 over a hash-set lazy-deletion heap), on an identical
//                 deterministic schedule/fire/cancel workload;
//   * netsim    — packet-level replication rate on a node grid;
//   * transient — 200-point transient-trajectory latency, incremental
//                 TransientSolver vs per-point single-shot recompute.
//
// The legacy kernel lives here, not in src/des/: it exists only so the
// speedup is measured against the real former implementation instead of
// a remembered number, and so future kernel changes keep an honest,
// recompilable baseline.  tools/bench_compare.py diffs two JSON outputs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/models.hpp"
#include "des/simulator.hpp"
#include "obs/session.hpp"
#include "util/error.hpp"
#include "markov/transient.hpp"
#include "netsim/replication.hpp"
#include "scenario/common.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {
namespace {

std::string FormatExp(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ------------------------------------------------------------- legacy DES
// Faithful reproduction of the pre-slab kernel: type-erased std::function
// actions in an unordered_map, the binary heap's old unordered_set
// live/cancelled bookkeeping, and the std::string-building Require calls
// the old hot path executed per event (forced through the std::string
// overload, as every call site resolved before the const char* overload
// existed).
class LegacySimulator {
 public:
  using Action = std::function<void()>;

  double Now() const noexcept { return now_; }

  des::EventId ScheduleAt(double time, Action action) {
    util::Require(time >= now_, std::string("cannot schedule into the past"));
    util::Require(static_cast<bool>(action),
                  std::string("event action must be callable"));
    const des::EventId id = next_id_++;
    heap_.push({time, id});
    live_.insert(id);
    actions_.emplace(id, std::move(action));
    return id;
  }

  des::EventId ScheduleAfter(double delay, Action action) {
    util::Require(delay >= 0.0, std::string("delay must be >= 0"));
    return ScheduleAt(now_ + delay, std::move(action));
  }

  bool Cancel(des::EventId id) {
    if (live_.erase(id) == 0) return false;
    cancelled_.insert(id);
    actions_.erase(id);
    return true;
  }

  bool Step() {
    SkipCancelled();
    if (heap_.empty()) return false;
    const Entry e = heap_.top();
    heap_.pop();
    live_.erase(e.id);
    now_ = e.time;
    const auto it = actions_.find(e.id);
    util::Require(it != actions_.end(),
                  std::string("internal: event without action"));
    Action action = std::move(it->second);
    actions_.erase(it);
    ++processed_;
    action();
    return true;
  }

  std::uint64_t ProcessedEvents() const noexcept { return processed_; }

 private:
  struct Entry {
    double time;
    des::EventId id;
    bool operator>(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void SkipCancelled() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<des::EventId> live_;
  std::unordered_set<des::EventId> cancelled_;
  std::unordered_map<des::EventId, Action> actions_;
  double now_ = 0.0;
  des::EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
};

// Deterministic netsim-shaped kernel workload: `chains` self-rescheduling
// event chains (a packet TX cycle), each refreshing a far-future shadow
// timer (a death timer: cancel + reschedule) every `cancel_every` fires.
// Identical for both kernels; returns a checksum so the scenario can
// assert behavioral equivalence before quoting a speedup.
template <typename Sim>
struct KernelWorkload {
  Sim& sim;
  std::size_t cancel_every;
  std::vector<des::EventId> shadow;
  std::vector<std::uint64_t> fires;
  std::uint64_t lcg;

  KernelWorkload(Sim& s, std::size_t chains, std::size_t cancel_each,
                 std::uint64_t seed)
      : sim(s), cancel_every(cancel_each), shadow(chains, 0),
        fires(chains, 0), lcg(seed * 2862933555777941757ULL + 3037000493ULL) {
    for (std::size_t i = 0; i < chains; ++i) {
      sim.ScheduleAt(NextDelay(), [this, i] { Fire(i); });
    }
  }

  double NextDelay() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return 0.5 + static_cast<double>(lcg >> 11) * 0x1.0p-53;
  }

  void Fire(std::size_t i) {
    ++fires[i];
    sim.ScheduleAfter(NextDelay(), [this, i] { Fire(i); });
    if (fires[i] % cancel_every == 0) {
      if (shadow[i] != 0) sim.Cancel(shadow[i]);
      shadow[i] = sim.ScheduleAfter(1.0e9, [] {});
    }
  }

  std::uint64_t Checksum() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < fires.size(); ++i) {
      sum += fires[i] * (i + 1);
    }
    return sum;
  }
};

struct KernelRun {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
  des::Simulator::KernelStats stats{};  // slab kernel only
  bool has_stats = false;
};

template <typename Sim>
KernelRun TimeKernel(std::uint64_t target_events, std::size_t chains,
                     std::size_t cancel_every, std::uint64_t seed) {
  Sim sim;
  KernelWorkload<Sim> load(sim, chains, cancel_every, seed);
  const auto start = std::chrono::steady_clock::now();
  while (sim.ProcessedEvents() < target_events && sim.Step()) {
  }
  KernelRun run;
  run.wall_s = Seconds(start);
  run.events = sim.ProcessedEvents();
  run.checksum = load.Checksum();
  if constexpr (std::is_same_v<Sim, des::Simulator>) {
    run.stats = sim.Stats();
    run.has_stats = true;
  }
  return run;
}

// -------------------------------------------------------------- scenario
ResultSet RunBenchHotpath(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const std::uint64_t events = args.GetCount("events", 2000000, 1000);
  const std::size_t chains = args.GetCount("chains", 1024, 1);
  const std::size_t cancel_every = args.GetCount("cancel-every", 4, 1);
  const std::size_t reps = args.GetCount("replications", 16, 1);
  const std::size_t traj_points = args.GetCount("traj-points", 200, 2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetCount("seed", 2008));

  ResultSet results("hot-path benchmark: DES kernel, netsim, transient");
  results.SetMeta("events", std::to_string(events));
  results.SetMeta("chains", std::to_string(chains));
  results.SetMeta("cancel-every", std::to_string(cancel_every));
  results.SetMeta("replications", std::to_string(reps));
  results.SetMeta("traj-points", std::to_string(traj_points));
  results.SetMeta("seed", std::to_string(seed));

  // --- kernel event throughput --------------------------------------
  const KernelRun slab =
      TimeKernel<des::Simulator>(events, chains, cancel_every, seed);
  const KernelRun legacy =
      TimeKernel<LegacySimulator>(events, chains, cancel_every, seed);
  if (slab.checksum != legacy.checksum || slab.events != legacy.events) {
    throw util::Error("kernel benchmark: slab and legacy paths diverged");
  }

  ResultTable& kernel = results.AddTable(
      "kernel", {"path", "events", "wall (s)", "events/s", "speedup"});
  kernel.AddRow({"legacy (std::function + unordered_map)",
                 std::to_string(legacy.events),
                 util::FormatFixed(legacy.wall_s, 4),
                 util::FormatFixed(static_cast<double>(legacy.events) /
                                       legacy.wall_s, 0),
                 "1.00"});
  kernel.AddRow({"slab (InlineAction event records)",
                 std::to_string(slab.events),
                 util::FormatFixed(slab.wall_s, 4),
                 util::FormatFixed(static_cast<double>(slab.events) /
                                       slab.wall_s, 0),
                 util::FormatFixed(legacy.wall_s / slab.wall_s, 2)});

  // With an obs session active, fold the slab kernel's deterministic
  // counters into the bench JSON (keyed rows for bench_compare.py) and
  // into the --metrics registry.  Gated so the default output — and the
  // committed BENCH baselines — stay byte-identical.
  if (ctx.obs != nullptr && ctx.obs->MetricsEnabled() && slab.has_stats) {
    ResultTable& kmetrics =
        results.AddTable("kernel-metrics", {"key", "value"});
    const auto krow = [&](const std::string& name, std::uint64_t v) {
      kmetrics.AddRow({name, std::to_string(v)});
    };
    krow("bench.kernel.scheduled", slab.stats.scheduled);
    krow("bench.kernel.fired", slab.stats.fired);
    krow("bench.kernel.cancelled", slab.stats.cancelled);
    krow("bench.kernel.slab_reuses", slab.stats.slab_reuses);
    krow("bench.kernel.live_hwm", slab.stats.live_hwm);
    krow("bench.kernel.slab_slots", slab.stats.slab_slots);

    obs::MetricsSnapshot kernel_metrics;
    kernel_metrics.counters["bench.kernel.scheduled"] = slab.stats.scheduled;
    kernel_metrics.counters["bench.kernel.fired"] = slab.stats.fired;
    kernel_metrics.counters["bench.kernel.cancelled"] = slab.stats.cancelled;
    kernel_metrics.counters["bench.kernel.slab_reuses"] =
        slab.stats.slab_reuses;
    kernel_metrics.gauges["bench.kernel.live_hwm"] =
        static_cast<double>(slab.stats.live_hwm);
    kernel_metrics.gauges["bench.kernel.slab_slots"] =
        static_cast<double>(slab.stats.slab_slots);
    ctx.obs->Contribute(kernel_metrics, std::string());
  }

  // --- netsim replication rate --------------------------------------
  netsim::NetSimConfig net;
  net.network.node.cpu.arrival_rate = 2.0;
  net.network.node.cpu.service_rate = 20.0;
  net.network.node.sample_bits = 1024;
  net.network.node.listen_duty_cycle = 0.01;
  net.network.node.cpu_power = energy::Pxa271();
  net.network.sink = {0.0, 0.0};
  net.network.max_hop_m = 40.0;
  net.positions = node::MakeGrid(8, 8, 25.0);
  net.horizon_s = args.GetDouble("net-horizon", 30.0);

  netsim::ReplicationConfig rep;
  rep.replications = reps;
  rep.seed = seed;
  rep.keep_reports = true;

  const core::MarkovCpuModel cpu_model;
  ApplyObs(ctx, net);
  const auto net_start = std::chrono::steady_clock::now();
  const netsim::ReplicationSummary summary =
      RunReplications(net, cpu_model, rep, ctx.Executor());
  const double net_wall = Seconds(net_start);
  ContributeObs(ctx, summary);
  std::uint64_t net_events = 0;
  for (const netsim::NetSimReport& report : summary.reports) {
    net_events += report.events;
  }

  ResultTable& netsim_table = results.AddTable(
      "netsim", {"nodes", "horizon (s)", "replications", "wall (s)",
                 "replications/s", "events/s"});
  netsim_table.AddRow(
      {std::to_string(net.positions.size()),
       util::FormatFixed(net.horizon_s, 0), std::to_string(reps),
       util::FormatFixed(net_wall, 4),
       util::FormatFixed(static_cast<double>(reps) / net_wall, 2),
       util::FormatFixed(static_cast<double>(net_events) / net_wall, 0)});

  // --- transient trajectory latency ---------------------------------
  const markov::TransientCpuAnalysis transient(1.0, 10.0, 0.2, 0.1, 8);
  std::vector<double> grid(traj_points);
  const double t_max = 25.0;
  for (std::size_t i = 0; i < traj_points; ++i) {
    grid[i] = t_max * static_cast<double>(i) /
              static_cast<double>(traj_points - 1);
  }

  const auto inc_start = std::chrono::steady_clock::now();
  const std::vector<markov::TransientPoint> incremental =
      transient.Trajectory(grid);
  const double inc_wall = Seconds(inc_start);

  // Pre-PR shape: one full uniformization series from t = 0 per point.
  const auto shot_start = std::chrono::steady_clock::now();
  std::vector<markov::TransientPoint> single_shot;
  single_shot.reserve(traj_points);
  for (double t : grid) single_shot.push_back(transient.At(t));
  const double shot_wall = Seconds(shot_start);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < traj_points; ++i) {
    max_diff = std::max(
        max_diff, std::abs(incremental[i].p_idle - single_shot[i].p_idle));
  }
  if (max_diff > 1e-9) {
    throw util::Error("transient benchmark: incremental and single-shot "
                      "trajectories diverged");
  }

  ResultTable& transient_table = results.AddTable(
      "transient", {"path", "points", "wall (ms)", "points/s", "speedup"});
  transient_table.AddRow(
      {"single-shot per point", std::to_string(traj_points),
       util::FormatFixed(shot_wall * 1000.0, 2),
       util::FormatFixed(static_cast<double>(traj_points) / shot_wall, 1),
       "1.00"});
  transient_table.AddRow(
      {"incremental TransientSolver", std::to_string(traj_points),
       util::FormatFixed(inc_wall * 1000.0, 2),
       util::FormatFixed(static_cast<double>(traj_points) / inc_wall, 1),
       util::FormatFixed(shot_wall / inc_wall, 2)});

  results.AddNote("kernel checksum " + std::to_string(slab.checksum) +
                  " identical across paths; transient max |diff| " +
                  FormatExp(max_diff) +
                  "; timings are wall-clock and machine-dependent — "
                  "compare two runs with tools/bench_compare.py");
  return results;
}

// Fig. 4-style artifact on the time axis: state shares along a transient
// trajectory from the paper's cold start, one incremental solver pass.
ResultSet RunTransientTrajectory(const ScenarioContext& ctx) {
  const util::CliArgs& args = ctx.Args();
  const std::size_t points = args.GetCount("points", 40, 2);
  const std::size_t stages = args.GetCount("stages", 8, 1);
  const double t_max = args.GetDouble("t-max", 25.0);
  const double lambda = args.GetDouble("rate", 1.0);
  const double mu = args.GetDouble("service-rate", 10.0);
  const double pdt = args.GetDouble("pdt", 0.2);
  const double pud = args.GetDouble("pud", 0.1);

  const markov::TransientCpuAnalysis analysis(lambda, mu, pdt, pud, stages);
  std::vector<double> grid(points);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = t_max * static_cast<double>(i) /
              static_cast<double>(points - 1);
  }
  const std::vector<markov::TransientPoint> traj = analysis.Trajectory(grid);

  ResultSet results("transient state shares from cold start (standby)");
  results.SetMeta("stages", std::to_string(stages));
  results.SetMeta("pdt", util::FormatFixed(pdt, 3) + " s");
  results.SetMeta("pud", util::FormatFixed(pud, 3) + " s");

  ResultTable& table = results.AddTable(
      "state-shares", {"t(s)", "standby%", "powerup%", "idle%", "active%",
                       "mean jobs"});
  for (const markov::TransientPoint& p : traj) {
    table.AddNumericRow({p.time, p.p_standby * 100.0, p.p_powerup * 100.0,
                         p.p_idle * 100.0, p.p_active * 100.0, p.mean_jobs},
                        3);
  }

  const markov::StagesResult limit = analysis.StationaryLimit();
  results.AddNote("stationary limit: standby " +
                  util::FormatFixed(limit.p_standby * 100.0, 2) +
                  "%, idle " + util::FormatFixed(limit.p_idle * 100.0, 2) +
                  "%, active " + util::FormatFixed(limit.p_active * 100.0, 2) +
                  "% — the trajectory converges to these shares");
  return results;
}

const ScenarioRegistrar reg_bench_hotpath(MakeScenario(
    "bench-hotpath",
    "hot-path throughput: DES kernel vs legacy, netsim rate, transient "
    "trajectory latency",
    "extension (engineering benchmark, BENCH_hotpath.json)",
    {
        {"events", "N", "2000000", "kernel events to fire (>= 1000)"},
        {"chains", "N", "1024", "concurrent self-rescheduling chains"},
        {"cancel-every", "K", "4", "refresh a shadow timer every K fires"},
        {"replications", "R", "16", "netsim replications (>= 1)"},
        {"net-horizon", "S", "30", "netsim horizon (s)"},
        {"traj-points", "N", "200", "transient trajectory grid points"},
        {"seed", "N", "2008", "master RNG seed (non-negative)"},
    },
    RunBenchHotpath));

const ScenarioRegistrar reg_transient_trajectory(MakeScenario(
    "transient",
    "state shares along a transient trajectory (incremental solver)",
    "extension (Fig. 4 style, time axis)",
    {
        {"points", "N", "40", "trajectory grid points (>= 2)"},
        {"stages", "K", "8", "Erlang stages for the deterministic delays"},
        {"t-max", "S", "25", "trajectory end time (s)"},
        {"rate", "L", "1", "arrival rate (1/s)"},
        {"service-rate", "M", "10", "service rate (1/s)"},
        {"pdt", "S", "0.2", "Power Down Threshold (s)"},
        {"pud", "S", "0.1", "Power Up Delay (s)"},
    },
    RunTransientTrajectory));

}  // namespace
}  // namespace wsn::scenario
