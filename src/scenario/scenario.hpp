/// \file
/// The Scenario abstraction: one registered, named experiment = one paper
/// table/figure, ablation, exploration or netsim study.
///
/// A scenario declares its flag vocabulary (FlagSpec drives both unknown-
/// flag rejection and auto-generated --help), consumes a parsed CliArgs,
/// fans its sweep/replication grid across the ParallelExecutor it is
/// handed, and returns a structured ResultSet.  Everything above — the
/// wsnctl driver, the thin bench_*/example shims, the smoke tests — is
/// shared plumbing in run_main.{hpp,cpp}.
///
/// Registration is self-contained: each scenarios_*.cpp translation unit
/// defines file-scope ScenarioRegistrar objects whose constructors insert
/// into the process-wide ScenarioRegistry.  Those translation units live
/// in the `wsn_scenarios` CMake object library so the linker can never
/// drop them (a classic static-library registration hazard).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scenario/result.hpp"
#include "util/cli.hpp"
#include "util/executor.hpp"

/// \namespace wsn::scenario
/// The experiment engine: registered scenarios, structured results and
/// the shared wsnctl driver plumbing.

namespace wsn::obs {
class Session;
}  // namespace wsn::obs

namespace wsn::scenario {

class PointHarness;

/// Everything a scenario run receives from the driver: the parsed
/// command line and the executor to fan independent jobs through.
struct ScenarioContext {
  const util::CliArgs* args = nullptr;          ///< parsed flags (non-owning)
  util::ParallelExecutor* executor = nullptr;   ///< fan-out engine (non-owning)
  /// The wsnctl observability session (--metrics/--trace), or null when
  /// neither output was requested.  Scenarios that run the network
  /// simulator participate through scenario::ApplyObs/ContributeObs.
  obs::Session* obs = nullptr;
  /// The sweep-point harness (isolation, deadlines/retry, journal,
  /// resume), or null when every harness feature is off.  Studies route
  /// sweep cells through scenario::RunPointRow, which falls back to a
  /// plain AddRow when this is null — see scenario/harness.hpp.
  PointHarness* harness = nullptr;

  /// The parsed command line (must be set).
  const util::CliArgs& Args() const { return *args; }
  /// The executor scenario jobs map through (must be set).
  util::ParallelExecutor& Executor() const { return *executor; }
};

/// Interface every registered experiment implements (usually through
/// MakeScenario rather than a hand-written subclass).
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry key, e.g. "table4" — what `wsnctl run <name>` matches.
  virtual std::string Name() const = 0;

  /// One-line description for `wsnctl list`.
  virtual std::string Summary() const = 0;

  /// The paper artifact this reproduces ("paper Table 4", "extension").
  virtual std::string Artifact() const = 0;

  /// Accepted flags (validation + --help).  Scenario-specific only; the
  /// driver appends the global flags (--threads, --format, --help).
  virtual std::vector<util::FlagSpec> Flags() const = 0;

  virtual ResultSet Run(const ScenarioContext& ctx) const = 0;
};

/// Process-wide name -> Scenario map populated at static-init time by
/// ScenarioRegistrar objects.
class ScenarioRegistry {
 public:
  /// The process-wide registry.
  static ScenarioRegistry& Instance();

  /// Throws InvalidArgument on duplicate names.
  void Register(std::unique_ptr<Scenario> scenario);

  /// Null when not found.
  const Scenario* Find(const std::string& name) const;

  /// All scenarios, sorted by name.
  std::vector<const Scenario*> All() const;

 private:
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/// File-scope helper: constructing one registers the scenario.
struct ScenarioRegistrar {
  /// Registers `scenario` into ScenarioRegistry::Instance().
  explicit ScenarioRegistrar(std::unique_ptr<Scenario> scenario);
};

/// Build a Scenario from plain data plus a run function — the idiom the
/// scenarios_*.cpp registration files use.
std::unique_ptr<Scenario> MakeScenario(
    std::string name, std::string summary, std::string artifact,
    std::vector<util::FlagSpec> flags,
    std::function<ResultSet(const ScenarioContext&)> run);

}  // namespace wsn::scenario
