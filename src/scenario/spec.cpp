#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "core/models.hpp"
#include "des/bursty_workload.hpp"
#include "scenario/common.hpp"
#include "scenario/harness.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

namespace wsn::scenario {

namespace {

[[noreturn]] void SpecFail(const std::string& message) {
  throw util::InvalidArgument("spec: " + message);
}

/// Compact number rendering for error messages: integers without a
/// decimal point, everything else in %g form.
std::string NumStr(double v) {
  char buf[32];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%g", v);
  }
  return buf;
}

std::string JoinList(std::initializer_list<const char*> items) {
  std::string out;
  for (const char* item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

/// A JSON object plus its "$.section" path: every getter validates type
/// and range and fails with the member's full path.  Accepted-key lists
/// are kept sorted in the source so error messages read alphabetically.
class ObjView {
 public:
  ObjView(const util::JsonValue& v, std::string path)
      : v_(&v), path_(std::move(path)) {}

  const std::string& Path() const { return path_; }
  std::string At(const char* key) const { return path_ + "." + key; }
  bool Has(const char* key) const { return v_->Find(key) != nullptr; }
  bool Empty() const { return v_->Members().empty(); }

  /// Reject members outside `accepted`.  `note` qualifies the accepted
  /// list, e.g. " for study 'lifetime'" at the document root.
  void RequireKeys(std::initializer_list<const char*> accepted,
                   const std::string& note = "") const {
    for (const auto& [key, value] : v_->Members()) {
      bool known = false;
      for (const char* a : accepted) {
        if (key == a) {
          known = true;
          break;
        }
      }
      if (!known) {
        SpecFail("unknown key '" + key + "' at " + path_ + " (accepted" +
                 note + ": " + JoinList(accepted) + ")");
      }
    }
  }

  double Number(const char* key, double fallback) const {
    const util::JsonValue* m = v_->Find(key);
    if (m == nullptr) return fallback;
    if (!m->is_number()) {
      SpecFail(At(key) + ": expected a number, got " + m->TypeName());
    }
    return m->AsNumber();
  }

  double Positive(const char* key, double fallback) const {
    const double v = Number(key, fallback);
    if (!(v > 0.0)) SpecFail(At(key) + ": must be > 0 (got " + NumStr(v) + ")");
    return v;
  }

  double NonNegative(const char* key, double fallback) const {
    const double v = Number(key, fallback);
    if (!(v >= 0.0)) {
      SpecFail(At(key) + ": must be >= 0 (got " + NumStr(v) + ")");
    }
    return v;
  }

  /// Loss probabilities live in [0, 1) — MacConfig rejects p_loss = 1.
  double LossProb(const char* key, double fallback) const {
    const double v = Number(key, fallback);
    if (!(v >= 0.0 && v < 1.0)) {
      SpecFail(At(key) + ": must be in [0, 1) (got " + NumStr(v) + ")");
    }
    return v;
  }

  /// Head fractions / jam losses live in (0, 1].
  double FractionOpenLow(const char* key, double fallback) const {
    const double v = Number(key, fallback);
    if (!(v > 0.0 && v <= 1.0)) {
      SpecFail(At(key) + ": must be in (0, 1] (got " + NumStr(v) + ")");
    }
    return v;
  }

  /// Advanced-node fractions live in [0, 1].
  double FractionClosed(const char* key, double fallback) const {
    const double v = Number(key, fallback);
    if (!(v >= 0.0 && v <= 1.0)) {
      SpecFail(At(key) + ": must be in [0, 1] (got " + NumStr(v) + ")");
    }
    return v;
  }

  std::size_t Count(const char* key, std::size_t fallback,
                    std::size_t min) const {
    const util::JsonValue* m = v_->Find(key);
    if (m == nullptr) return fallback;
    if (!m->is_number()) {
      SpecFail(At(key) + ": expected a number, got " + m->TypeName());
    }
    const double v = m->AsNumber();
    if (v != std::floor(v) || std::abs(v) > 9.0e15) {
      SpecFail(At(key) + ": expected an integer, got " + NumStr(v));
    }
    if (v < static_cast<double>(min)) {
      SpecFail(At(key) + ": must be >= " + std::to_string(min) + " (got " +
               NumStr(v) + ")");
    }
    return static_cast<std::size_t>(v);
  }

  std::uint64_t U64(const char* key, std::uint64_t fallback) const {
    const util::JsonValue* m = v_->Find(key);
    if (m == nullptr) return fallback;
    if (!m->is_number()) {
      SpecFail(At(key) + ": expected a number, got " + m->TypeName());
    }
    const double v = m->AsNumber();
    if (v != std::floor(v) || std::abs(v) > 9.0e15) {
      SpecFail(At(key) + ": expected an integer, got " + NumStr(v));
    }
    if (v < 0.0) {
      SpecFail(At(key) + ": must be >= 0 (got " + NumStr(v) + ")");
    }
    return static_cast<std::uint64_t>(v);
  }

  bool Bool(const char* key, bool fallback) const {
    const util::JsonValue* m = v_->Find(key);
    if (m == nullptr) return fallback;
    if (!m->is_bool()) {
      SpecFail(At(key) + ": expected a boolean, got " + m->TypeName());
    }
    return m->AsBool();
  }

  std::string Choice(const char* key, const std::string& fallback,
                     std::initializer_list<const char*> choices) const {
    const util::JsonValue* m = v_->Find(key);
    if (m == nullptr) return fallback;
    if (!m->is_string()) {
      SpecFail(At(key) + ": expected a string, got " + m->TypeName());
    }
    const std::string& v = m->AsString();
    for (const char* c : choices) {
      if (v == c) return v;
    }
    SpecFail(At(key) + ": unknown value '" + v +
             "' (one of: " + JoinList(choices) + ")");
  }

  /// Non-empty array of strictly positive numbers (a sweep-axis list in
  /// the faults study).  Arity errors name the count.
  std::vector<double> PositiveArray(const char* key,
                                    std::vector<double> fallback) const {
    const util::JsonValue* m = v_->Find(key);
    if (m == nullptr) return fallback;
    if (!m->is_array()) {
      SpecFail(At(key) + ": expected an array of numbers, got " +
               m->TypeName());
    }
    const auto& items = m->Items();
    if (items.empty()) {
      SpecFail(At(key) + ": needs at least 1 entry (got 0)");
    }
    std::vector<double> values;
    values.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string at = At(key) + "[" + std::to_string(i) + "]";
      if (!items[i].is_number()) {
        SpecFail(at + ": expected a number, got " + items[i].TypeName());
      }
      const double v = items[i].AsNumber();
      if (!(v > 0.0)) SpecFail(at + ": must be > 0 (got " + NumStr(v) + ")");
      values.push_back(v);
    }
    return values;
  }

  const util::JsonValue* Raw(const char* key) const { return v_->Find(key); }

 private:
  const util::JsonValue* v_;
  std::string path_;
};

/// Fetch an optional object-valued section of `root`.
std::optional<ObjView> Section(const ObjView& root, const char* key) {
  const util::JsonValue* v = root.Raw(key);
  if (v == nullptr) return std::nullopt;
  if (!v->is_object()) {
    SpecFail(root.At(key) + ": expected an object, got " + v->TypeName());
  }
  return ObjView(*v, root.At(key));
}

/// The shared `run` section of the named studies (the generic study
/// adds `stop_at` and parses its own).
void ParseRunSection(const std::optional<ObjView>& run, double& horizon_s,
                     std::size_t& replications, std::uint64_t& seed) {
  if (!run) return;
  run->RequireKeys({"horizon_s", "replications", "seed"});
  horizon_s = run->Positive("horizon_s", horizon_s);
  replications = run->Count("replications", replications, 1);
  seed = run->U64("seed", seed);
}

/// `topology` section of the cols x rows grid studies.  `sinks`
/// participates only where the registry twin exposes --sinks.
void ParseGridTopology(const std::optional<ObjView>& t, std::size_t& cols,
                       std::size_t& rows, double& spacing_m, double& hop_m,
                       std::size_t* sinks) {
  if (!t) return;
  if (sinks != nullptr) {
    t->RequireKeys({"cols", "hop", "rows", "sinks", "spacing"});
    *sinks = t->Count("sinks", *sinks, 1);
    if (*sinks > 4) {
      SpecFail(t->At("sinks") + ": must be in 1..4 (got " +
               std::to_string(*sinks) + ")");
    }
  } else {
    t->RequireKeys({"cols", "hop", "rows", "spacing"});
  }
  cols = t->Count("cols", cols, 1);
  rows = t->Count("rows", rows, 1);
  spacing_m = t->Positive("spacing", spacing_m);
  hop_m = t->Positive("hop", hop_m);
}

void ParseClusterSection(const ObjView& c, ClusterKnobs& knobs) {
  c.RequireKeys({"aggregation", "head_fraction", "protocol", "round_s",
                 "static_heads"});
  knobs.protocol = netsim::ParseClusterProtocolKind(
      c.Choice("protocol", netsim::ClusterProtocolKindName(knobs.protocol),
               {"leach", "static"}));
  knobs.head_fraction = c.FractionOpenLow("head_fraction", knobs.head_fraction);
  knobs.static_heads = c.Count("static_heads", knobs.static_heads, 0);
  knobs.round_s = c.Positive("round_s", knobs.round_s);
  knobs.aggregation = c.Count("aggregation", knobs.aggregation, 1);
}

// ------------------------------------------------------------- studies

LifetimeStudyParams ParseLifetime(const ObjView& root) {
  root.RequireKeys({"node", "run", "study", "topology", "traffic"},
                   " for study 'lifetime'");
  LifetimeStudyParams p;
  ParseGridTopology(Section(root, "topology"), p.cols, p.rows, p.spacing_m,
                    p.hop_m, nullptr);
  if (const auto n = Section(root, "node")) {
    n->RequireKeys({"battery_mah", "rate"});
    p.rate_hz = n->Positive("rate", p.rate_hz);
    p.battery_mah = n->Positive("battery_mah", p.battery_mah);
  }
  if (const auto t = Section(root, "traffic")) {
    t->RequireKeys({"kind"});
    p.steady = t->Choice("kind", p.steady ? "steady" : "bursty",
                         {"bursty", "steady"}) == "steady";
  }
  ParseRunSection(Section(root, "run"), p.horizon_s, p.replications, p.seed);
  return p;
}

ThroughputStudyParams ParseThroughput(const ObjView& root) {
  root.RequireKeys({"cluster", "node", "run", "study", "topology"},
                   " for study 'throughput'");
  ThroughputStudyParams p;
  ParseGridTopology(Section(root, "topology"), p.cols, p.rows, p.spacing_m,
                    p.hop_m, nullptr);
  if (const auto n = Section(root, "node")) {
    n->RequireKeys({"rate"});
    p.rate_hz = n->Positive("rate", p.rate_hz);
  }
  if (const auto c = Section(root, "cluster")) {
    if (!c->Empty()) {
      SpecFail(c->Path() +
               ": study 'throughput' derives its cluster knobs (round = "
               "horizon/5, aggregation 4); pass an empty object to enable "
               "the clustered data path");
    }
    p.clustered = true;
  }
  ParseRunSection(Section(root, "run"), p.horizon_s, p.replications, p.seed);
  return p;
}

ClusteredStudyParams ParseClustered(const ObjView& root) {
  root.RequireKeys({"cluster", "node", "run", "study", "topology"},
                   " for study 'clustered'");
  ClusteredStudyParams p;
  ParseGridTopology(Section(root, "topology"), p.grid.cols, p.grid.rows,
                    p.grid.spacing_m, p.grid.hop_m, &p.grid.sinks);
  if (const auto n = Section(root, "node")) {
    n->RequireKeys({"battery_mah", "rate"});
    p.grid.rate_hz = n->Positive("rate", p.grid.rate_hz);
    p.grid.battery_mah = n->Positive("battery_mah", p.grid.battery_mah);
  }
  if (const auto c = Section(root, "cluster")) {
    ParseClusterSection(*c, p.cluster);
  }
  if (const auto run = Section(root, "run")) {
    run->RequireKeys({"horizon_s", "replications", "seed"});
    p.grid.horizon_s = run->Positive("horizon_s", p.grid.horizon_s);
    p.replications = run->Count("replications", p.replications, 1);
    p.seed = run->U64("seed", p.seed);
  }
  return p;
}

HeterogeneousStudyParams ParseHeterogeneous(const ObjView& root) {
  root.RequireKeys({"classes", "node", "run", "study", "topology"},
                   " for study 'heterogeneous'");
  HeterogeneousStudyParams p;
  ParseGridTopology(Section(root, "topology"), p.grid.cols, p.grid.rows,
                    p.grid.spacing_m, p.grid.hop_m, nullptr);
  if (const auto n = Section(root, "node")) {
    n->RequireKeys({"battery_mah", "rate"});
    p.grid.rate_hz = n->Positive("rate", p.grid.rate_hz);
    p.grid.battery_mah = n->Positive("battery_mah", p.grid.battery_mah);
  }
  if (const auto c = Section(root, "classes")) {
    c->RequireKeys({"advanced_fraction", "battery_factor", "placement"});
    p.advanced_fraction =
        c->FractionClosed("advanced_fraction", p.advanced_fraction);
    p.battery_factor = c->Positive("battery_factor", p.battery_factor);
    p.placement = c->Choice("placement", p.placement, {"hotspot", "spread"});
  }
  if (const auto run = Section(root, "run")) {
    run->RequireKeys({"horizon_s", "replications", "seed"});
    p.grid.horizon_s = run->Positive("horizon_s", p.grid.horizon_s);
    p.replications = run->Count("replications", p.replications, 1);
    p.seed = run->U64("seed", p.seed);
  }
  return p;
}

FaultStudyParams ParseFaults(const ObjView& root) {
  root.RequireKeys({"faults", "node", "run", "study", "topology"},
                   " for study 'faults'");
  FaultStudyParams p;
  if (const auto t = Section(root, "topology")) {
    t->RequireKeys({"hop", "nodes", "spacing"});
    p.nodes = t->Count("nodes", p.nodes, 2);
    p.spacing_m = t->Positive("spacing", p.spacing_m);
    p.hop_m = t->Positive("hop", p.hop_m);
  }
  if (const auto n = Section(root, "node")) {
    n->RequireKeys({"rate"});
    p.rate_hz = n->Positive("rate", p.rate_hz);
  }
  if (const auto f = Section(root, "faults")) {
    f->RequireKeys({"crash_rates", "jam_duration", "jam_p_loss", "jam_radius",
                    "jam_windows", "outages", "sink_outage_s",
                    "sink_outages"});
    p.crash_rates = f->PositiveArray("crash_rates", p.crash_rates);
    p.outages = f->PositiveArray("outages", p.outages);
    p.jam_windows = f->Count("jam_windows", p.jam_windows, 0);
    p.jam_radius_m = f->Positive("jam_radius", p.jam_radius_m);
    if (f->Has("jam_duration")) {
      p.jam_duration_s = f->Positive("jam_duration", p.jam_duration_s);
    }
    p.jam_p_loss = f->FractionOpenLow("jam_p_loss", p.jam_p_loss);
    p.sink_outages = f->Count("sink_outages", p.sink_outages, 0);
    if (f->Has("sink_outage_s")) {
      p.sink_outage_s = f->Positive("sink_outage_s", p.sink_outage_s);
    }
  }
  ParseRunSection(Section(root, "run"), p.horizon_s, p.replications, p.seed);
  return p;
}

// ------------------------------------------------------------- generic

/// Range discipline of a sweepable knob.
enum class AxisRange { kPositive, kLossProb, kFractionOpenLow };

struct SweepableKnob {
  const char* key;
  AxisRange range;
  bool needs_cluster;
};

/// Sorted by key — the order error messages list them in.
constexpr SweepableKnob kSweepable[] = {
    {"cluster.head_fraction", AxisRange::kFractionOpenLow, true},
    {"cluster.round_s", AxisRange::kPositive, true},
    {"faults.crash_rate", AxisRange::kPositive, false},
    {"faults.outage_s", AxisRange::kPositive, false},
    {"mac.p_loss", AxisRange::kLossProb, false},
    {"node.battery_mah", AxisRange::kPositive, false},
    {"node.rate", AxisRange::kPositive, false},
    {"run.horizon_s", AxisRange::kPositive, false},
    {"topology.hop", AxisRange::kPositive, false},
    {"topology.spacing", AxisRange::kPositive, false},
};

std::string SweepableList() {
  std::string out;
  for (const SweepableKnob& k : kSweepable) {
    if (!out.empty()) out += ", ";
    out += k.key;
  }
  return out;
}

/// Sorted column vocabulary of the generic study's cells table.
constexpr const char* kColumns[] = {
    "conserved",     "crashes",   "delivered", "delivery_ratio",
    "dropped",       "events",    "first_death_s", "generated",
    "healed",        "in_flight", "partition_s",   "recoveries",
};

std::string ColumnList() {
  std::string out;
  for (const char* c : kColumns) {
    if (!out.empty()) out += ", ";
    out += c;
  }
  return out;
}

void ApplyAxis(GenericSpec& g, const std::string& key, double v) {
  if (key == "node.rate") {
    g.rate_hz = v;
  } else if (key == "node.battery_mah") {
    g.battery_mah = v;
  } else if (key == "topology.hop") {
    g.hop_m = v;
  } else if (key == "topology.spacing") {
    g.spacing_m = v;
  } else if (key == "faults.crash_rate") {
    g.crash_rate_hz = v;
  } else if (key == "faults.outage_s") {
    g.outage_s = v;
  } else if (key == "cluster.head_fraction") {
    g.cluster.head_fraction = v;
  } else if (key == "cluster.round_s") {
    g.cluster.round_s = v;
  } else if (key == "mac.p_loss") {
    g.p_loss = v;
  } else if (key == "run.horizon_s") {
    g.horizon_s = v;
  }
}

void ParseSweep(const ObjView& root, GenericSpec& g) {
  const util::JsonValue* sv = root.Raw("sweep");
  if (sv == nullptr) return;
  if (!sv->is_array()) {
    SpecFail(root.At("sweep") + ": expected an array of axis objects, got " +
             sv->TypeName());
  }
  const auto& items = sv->Items();
  if (items.size() > 3) {
    SpecFail(root.At("sweep") + ": at most 3 axes (got " +
             std::to_string(items.size()) + ")");
  }
  std::size_t cells = 1;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::string at = root.At("sweep") + "[" + std::to_string(i) + "]";
    if (!items[i].is_object()) {
      SpecFail(at + ": expected an axis object, got " + items[i].TypeName());
    }
    const ObjView axis_view(items[i], at);
    axis_view.RequireKeys({"key", "values"});
    if (!axis_view.Has("key")) {
      SpecFail("missing required key 'key' at " + at);
    }
    if (!axis_view.Has("values")) {
      SpecFail("missing required key 'values' at " + at);
    }
    const util::JsonValue* key = axis_view.Raw("key");
    if (!key->is_string()) {
      SpecFail(at + ".key: expected a string, got " + key->TypeName());
    }
    SweepAxis axis;
    axis.key = key->AsString();
    const SweepableKnob* knob = nullptr;
    for (const SweepableKnob& k : kSweepable) {
      if (axis.key == k.key) {
        knob = &k;
        break;
      }
    }
    if (knob == nullptr) {
      SpecFail(at + ".key: '" + axis.key +
               "' is not sweepable (sweepable: " + SweepableList() + ")");
    }
    for (const SweepAxis& seen : g.sweep) {
      if (seen.key == axis.key) {
        SpecFail(at + ".key: duplicate axis '" + axis.key + "'");
      }
    }
    if (knob->needs_cluster && !g.clustered) {
      SpecFail(at + ".key: '" + axis.key + "' requires a cluster section");
    }
    const util::JsonValue* vals = axis_view.Raw("values");
    if (!vals->is_array()) {
      SpecFail(at + ".values: expected an array of numbers, got " +
               vals->TypeName());
    }
    if (vals->Items().empty()) {
      SpecFail(at + ".values: needs at least 1 entry (got 0)");
    }
    for (std::size_t j = 0; j < vals->Items().size(); ++j) {
      const std::string vat = at + ".values[" + std::to_string(j) + "]";
      const util::JsonValue& item = vals->Items()[j];
      if (!item.is_number()) {
        SpecFail(vat + ": expected a number, got " + item.TypeName());
      }
      const double v = item.AsNumber();
      switch (knob->range) {
        case AxisRange::kPositive:
          if (!(v > 0.0)) {
            SpecFail(vat + ": must be > 0 (got " + NumStr(v) + ")");
          }
          break;
        case AxisRange::kLossProb:
          if (!(v >= 0.0 && v < 1.0)) {
            SpecFail(vat + ": must be in [0, 1) (got " + NumStr(v) + ")");
          }
          break;
        case AxisRange::kFractionOpenLow:
          if (!(v > 0.0 && v <= 1.0)) {
            SpecFail(vat + ": must be in (0, 1] (got " + NumStr(v) + ")");
          }
          break;
      }
      axis.values.push_back(v);
    }
    cells *= axis.values.size();
    g.sweep.push_back(std::move(axis));
  }
  if (cells > 64) {
    SpecFail(root.At("sweep") + ": " + std::to_string(cells) +
             " cells exceed the 64-cell cap (axis lengths multiply)");
  }
}

/// The first generic knob that makes the analytic cross-check invalid,
/// or "" when the spec is analytically comparable.
std::string AnalyticConflict(const GenericSpec& g) {
  if (g.clustered) {
    return "the cluster section (the analytic estimator models flat greedy "
           "routing)";
  }
  if (g.bursty) {
    return "traffic.kind 'bursty' (the analytic estimator assumes steady "
           "Poisson traffic)";
  }
  if (g.crash_rate_hz > 0.0 || g.jam_windows > 0 || g.sink_outages > 0) {
    return "the faults section (the analytic estimator has no fault model)";
  }
  if (g.p_loss > 0.0) {
    return "mac.p_loss > 0 (the analytic estimator assumes a lossless MAC)";
  }
  if (g.wakeup_interval_s > 0.0) {
    return "mac.wakeup_interval_s > 0 (the analytic estimator assumes an "
           "always-on MAC)";
  }
  if (g.rerouting) {
    return "routing.rerouting true (disable rerouting so the simulated first "
           "death matches the static routes)";
  }
  if (g.stop_at != "first_death") {
    return "run.stop_at '" + g.stop_at +
           "' (use 'first_death' so the run measures lifetime)";
  }
  if (g.sinks > 1) {
    return "topology.sinks > 1 (the analytic estimator models a single "
           "sink)";
  }
  return "";
}

GenericSpec ParseGeneric(const ObjView& root) {
  root.RequireKeys({"classes", "cluster", "faults", "mac", "node", "output",
                    "routing", "run", "study", "sweep", "topology", "traffic",
                    "verify"},
                   " for study 'generic'");
  GenericSpec g;
  if (const auto t = Section(root, "topology")) {
    t->RequireKeys({"cols", "hop", "nodes", "rows", "sinks", "spacing"});
    if (t->Has("nodes") && (t->Has("cols") || t->Has("rows"))) {
      SpecFail(t->Path() +
               ": 'nodes' conflicts with 'cols'/'rows' (a 'nodes' deployment "
               "derives its own near-square grid)");
    }
    g.nodes = t->Count("nodes", g.nodes, 2);
    g.cols = t->Count("cols", g.cols, 1);
    g.rows = t->Count("rows", g.rows, 1);
    g.spacing_m = t->Positive("spacing", g.spacing_m);
    g.hop_m = t->Positive("hop", g.hop_m);
    g.sinks = t->Count("sinks", g.sinks, 1);
    if (g.sinks > 4) {
      SpecFail(t->At("sinks") + ": must be in 1..4 (got " +
               std::to_string(g.sinks) + ")");
    }
  }
  if (const auto n = Section(root, "node")) {
    n->RequireKeys({"battery_mah", "rate"});
    g.rate_hz = n->Positive("rate", g.rate_hz);
    g.battery_mah = n->Positive("battery_mah", g.battery_mah);
  }
  if (const auto t = Section(root, "traffic")) {
    t->RequireKeys({"kind"});
    g.bursty = t->Choice("kind", g.bursty ? "bursty" : "steady",
                         {"bursty", "steady"}) == "bursty";
  }
  if (const auto m = Section(root, "mac")) {
    m->RequireKeys({"max_queue", "max_retries", "p_loss",
                    "wakeup_interval_s"});
    g.p_loss = m->LossProb("p_loss", g.p_loss);
    g.wakeup_interval_s =
        m->NonNegative("wakeup_interval_s", g.wakeup_interval_s);
    g.max_retries = m->Count("max_retries", g.max_retries, 0);
    g.max_queue = m->Count("max_queue", g.max_queue, 1);
  }
  if (const auto r = Section(root, "routing")) {
    r->RequireKeys({"rerouting", "update"});
    const std::string update = r->Choice(
        "update", "incremental", {"full", "incremental", "legacy"});
    g.routing_update = update == "incremental"
                           ? netsim::RoutingUpdateMode::kIncremental
                           : update == "full"
                                 ? netsim::RoutingUpdateMode::kFull
                                 : netsim::RoutingUpdateMode::kLegacy;
    g.rerouting = r->Bool("rerouting", g.rerouting);
  }
  if (const auto c = Section(root, "cluster")) {
    g.clustered = true;
    c->RequireKeys({"aggregation", "assign", "head_fraction", "protocol",
                    "round_s", "static_heads"});
    ClusterKnobs knobs = g.cluster;
    knobs.protocol = netsim::ParseClusterProtocolKind(
        c->Choice("protocol", "leach", {"leach", "static"}));
    knobs.head_fraction =
        c->FractionOpenLow("head_fraction", knobs.head_fraction);
    knobs.static_heads = c->Count("static_heads", knobs.static_heads, 0);
    knobs.round_s = c->Positive("round_s", knobs.round_s);
    knobs.aggregation = c->Count("aggregation", knobs.aggregation, 1);
    g.cluster = knobs;
    g.assign = c->Choice("assign", "grid", {"all-pairs", "grid"}) == "grid"
                   ? netsim::HeadAssignMode::kGrid
                   : netsim::HeadAssignMode::kAllPairs;
  }
  if (const auto c = Section(root, "classes")) {
    c->RequireKeys({"advanced_fraction", "battery_factor", "placement"});
    g.advanced_fraction =
        c->FractionClosed("advanced_fraction", g.advanced_fraction);
    g.battery_factor = c->Positive("battery_factor", g.battery_factor);
    g.placement = c->Choice("placement", g.placement, {"hotspot", "spread"});
  }
  if (const auto f = Section(root, "faults")) {
    f->RequireKeys({"crash_rate", "jam_duration", "jam_p_loss", "jam_radius",
                    "jam_windows", "outage_s", "sink_outage_s",
                    "sink_outages"});
    g.crash_rate_hz = f->NonNegative("crash_rate", g.crash_rate_hz);
    g.outage_s = f->NonNegative("outage_s", g.outage_s);
    g.jam_windows = f->Count("jam_windows", g.jam_windows, 0);
    g.jam_radius_m = f->Positive("jam_radius", g.jam_radius_m);
    if (f->Has("jam_duration")) {
      g.jam_duration_s = f->Positive("jam_duration", g.jam_duration_s);
    }
    g.jam_p_loss = f->FractionOpenLow("jam_p_loss", g.jam_p_loss);
    g.sink_outages = f->Count("sink_outages", g.sink_outages, 0);
    if (f->Has("sink_outage_s")) {
      g.sink_outage_s = f->Positive("sink_outage_s", g.sink_outage_s);
    }
    if (g.crash_rate_hz > 0.0 && !(g.outage_s > 0.0)) {
      SpecFail(f->Path() + ": 'crash_rate' > 0 requires 'outage_s' > 0");
    }
  }
  if (const auto run = Section(root, "run")) {
    run->RequireKeys({"horizon_s", "replications", "seed", "stop_at"});
    g.horizon_s = run->Positive("horizon_s", g.horizon_s);
    g.stop_at = run->Choice("stop_at", g.stop_at,
                            {"first_death", "horizon", "partition"});
    g.replications = run->Count("replications", g.replications, 1);
    g.seed = run->U64("seed", g.seed);
  }
  ParseSweep(root, g);
  if (const auto o = Section(root, "output")) {
    o->RequireKeys({"columns"});
    const util::JsonValue* cols = o->Raw("columns");
    if (cols != nullptr) {
      if (!cols->is_array()) {
        SpecFail(o->At("columns") + ": expected an array of column names, "
                 "got " + cols->TypeName());
      }
      if (cols->Items().empty()) {
        SpecFail(o->At("columns") + ": needs at least 1 entry (got 0)");
      }
      for (std::size_t i = 0; i < cols->Items().size(); ++i) {
        const std::string at =
            o->At("columns") + "[" + std::to_string(i) + "]";
        const util::JsonValue& item = cols->Items()[i];
        if (!item.is_string()) {
          SpecFail(at + ": expected a string, got " + item.TypeName());
        }
        const std::string& name = item.AsString();
        bool known = false;
        for (const char* c : kColumns) {
          if (name == c) {
            known = true;
            break;
          }
        }
        if (!known) {
          SpecFail(at + ": unknown column '" + name +
                   "' (available: " + ColumnList() + ")");
        }
        if (std::find(g.columns.begin(), g.columns.end(), name) !=
            g.columns.end()) {
          SpecFail(at + ": duplicate column '" + name + "'");
        }
        g.columns.push_back(name);
      }
    }
  }
  if (const auto v = Section(root, "verify")) {
    v->RequireKeys({"analytic", "oracle"});
    g.verify_oracle = v->Bool("oracle", g.verify_oracle);
    g.verify_analytic = v->Bool("analytic", g.verify_analytic);
  }
  if (g.verify_analytic) {
    const std::string conflict = AnalyticConflict(g);
    if (!conflict.empty()) {
      SpecFail(root.At("verify") + ".analytic: conflicts with " + conflict);
    }
    for (const SweepAxis& axis : g.sweep) {
      if (axis.key == "mac.p_loss" || axis.key == "faults.crash_rate" ||
          axis.key == "faults.outage_s") {
        SpecFail(root.At("verify") + ".analytic: conflicts with sweep axis '" +
                 axis.key + "'");
      }
    }
  }
  if (g.columns.empty()) {
    g.columns = {"generated",      "delivered",     "dropped",
                 "delivery_ratio", "first_death_s", "conserved"};
  }
  return g;
}

// ------------------------------------------------- generic interpreter

netsim::NetSimConfig BuildGenericConfig(const GenericSpec& g) {
  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = g.rate_hz;
  cfg.network.node.cpu.service_rate = 10.0 * std::max(g.rate_hz, 0.1);
  cfg.network.node.cpu_power = energy::Msp430();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = g.battery_mah;
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = g.hop_m;

  std::size_t cols = g.cols;
  std::size_t rows = g.rows;
  if (g.nodes > 0) {
    cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(g.nodes))));
    rows = (g.nodes + cols - 1) / cols;
    cfg.positions = NearSquareGrid(g.nodes, g.spacing_m);
  } else {
    cfg.positions = node::MakeGrid(cols, rows, g.spacing_m);
  }
  cfg.horizon_s = g.horizon_s;

  const double x_max = (static_cast<double>(cols) + 1.0) * g.spacing_m;
  const double y_max = (static_cast<double>(rows) + 1.0) * g.spacing_m;
  if (g.sinks >= 2) cfg.sinks = {{0.0, 0.0}, {x_max, y_max}};
  if (g.sinks >= 3) cfg.sinks.push_back({x_max, 0.0});
  if (g.sinks >= 4) cfg.sinks.push_back({0.0, y_max});

  cfg.mac.p_loss = g.p_loss;
  cfg.mac.wakeup_interval_s = g.wakeup_interval_s;
  cfg.mac.max_retries = g.max_retries;
  cfg.mac.max_queue = g.max_queue;

  cfg.routing_update = g.routing_update;
  cfg.rerouting = g.rerouting;
  cfg.stop_at_first_death = g.stop_at == "first_death";
  cfg.stop_at_partition = g.stop_at == "partition";

  if (g.clustered) {
    ApplyClusterKnobs(cfg, g.cluster);
    cfg.cluster.assign = g.assign;
  }

  if (g.bursty) {
    // Same quiet/storm MMPP shape as the lifetime study: 20% of the
    // nominal rate most of the time, 10x bursts, long-run mean close to
    // the nominal rate.
    const double rate = g.rate_hz;
    cfg.traffic_factory = [rate](std::size_t) {
      return std::make_unique<des::MmppWorkload>(
          std::vector<double>{0.2 * rate, 10.0 * rate},
          std::vector<std::vector<double>>{{-0.02, 0.02}, {0.2, -0.2}});
    };
  }

  if (g.crash_rate_hz > 0.0) {
    cfg.faults.crash_rate_hz = g.crash_rate_hz;
    cfg.faults.mean_outage_s = g.outage_s;
  }
  if (g.jam_windows > 0) {
    cfg.faults.jam_windows = g.jam_windows;
    cfg.faults.jam_radius_m = g.jam_radius_m;
    cfg.faults.jam_duration_s =
        g.jam_duration_s > 0.0 ? g.jam_duration_s : g.horizon_s / 10.0;
    cfg.faults.jam_p_loss = g.jam_p_loss;
  }
  if (g.sink_outages > 0) {
    cfg.faults.sink_outages = g.sink_outages;
    cfg.faults.sink_outage_s =
        g.sink_outage_s > 0.0 ? g.sink_outage_s : g.horizon_s / 10.0;
  }

  if (g.advanced_fraction > 0.0) {
    netsim::NodeClass standard;
    standard.name = "standard";
    standard.battery_mah = cfg.network.node.battery_mah;
    standard.battery_volts = cfg.network.node.battery_volts;
    standard.radio = cfg.network.node.radio;
    standard.listen_duty_cycle = cfg.network.node.listen_duty_cycle;
    netsim::NodeClass advanced = standard;
    advanced.name = "advanced";
    advanced.battery_mah = standard.battery_mah * g.battery_factor;
    cfg.classes = {standard, advanced};

    const std::size_t n = cfg.positions.size();
    const std::size_t advanced_count = static_cast<std::size_t>(
        std::lround(g.advanced_fraction * static_cast<double>(n)));
    cfg.node_class.assign(n, "standard");
    if (advanced_count > 0 && g.placement == "hotspot") {
      const core::MarkovCpuModel model;
      const node::Network analytic_net(cfg.network, cfg.positions);
      const node::NetworkReport report = analytic_net.Evaluate(model);
      std::vector<std::size_t> order(n);
      for (std::size_t i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const double la = report.nodes[a].relay_packets_per_second;
                  const double lb = report.nodes[b].relay_packets_per_second;
                  if (la != lb) return la > lb;
                  return a < b;
                });
      for (std::size_t j = 0; j < advanced_count; ++j) {
        cfg.node_class[order[j]] = "advanced";
      }
    } else if (advanced_count > 0) {  // spread
      for (std::size_t j = 0; j < advanced_count; ++j) {
        const std::size_t pick = (j * n + n / 2) / advanced_count;
        cfg.node_class[std::min(pick, n - 1)] = "advanced";
      }
    }
  }
  return cfg;
}

/// One expanded sweep cell: the base spec with axis values applied.
struct SpecCell {
  GenericSpec spec;
  std::string label;
};

std::vector<SpecCell> ExpandCells(const GenericSpec& g) {
  std::vector<SpecCell> cells{{g, ""}};
  for (const SweepAxis& axis : g.sweep) {
    std::vector<SpecCell> next;
    next.reserve(cells.size() * axis.values.size());
    for (const SpecCell& cell : cells) {
      for (const double v : axis.values) {
        SpecCell expanded = cell;
        ApplyAxis(expanded.spec, axis.key, v);
        if (!expanded.label.empty()) expanded.label += " ";
        expanded.label += axis.key + "=" + NumStr(v);
        next.push_back(std::move(expanded));
      }
    }
    cells = std::move(next);
  }
  for (SpecCell& cell : cells) {
    if (cell.label.empty()) cell.label = "base";
  }
  return cells;
}

ResultSet RunGenericStudy(const ScenarioContext& ctx, const GenericSpec& g) {
  const std::vector<SpecCell> cells = ExpandCells(g);
  netsim::ReplicationConfig rep;
  rep.replications = g.replications;
  rep.seed = g.seed;
  rep.keep_reports = true;

  ResultSet results(
      "declarative generic study: conservation-checked sweep cells");
  results.SetMeta("study", "generic");
  results.SetMeta("cells", std::to_string(cells.size()));
  results.SetMeta("replications", std::to_string(rep.replications));
  results.SetMeta("seed", std::to_string(rep.seed));
  std::string verify = "conservation";
  if (g.verify_oracle) verify += " + oracle";
  if (g.verify_analytic) verify += " + analytic";
  results.SetMeta("verify", verify);

  std::vector<std::string> header{"cell"};
  for (const std::string& column : g.columns) header.push_back(column);
  if (g.verify_analytic) {
    header.push_back("analytic first death (s)");
    header.push_back("rel err");
  }
  ResultTable& table = results.AddTable("cells", header);

  const core::MarkovCpuModel model;
  // The whole cell — production run, oracle twin, analytic check and
  // column formatting — is one sweep point, run (or replayed) through
  // the point harness; `cctx` may carry a forked worker's executor.
  const auto run_cell = [&](const ScenarioContext& cctx,
                            const SpecCell& cell) -> std::vector<std::string> {
    netsim::NetSimConfig cfg = BuildGenericConfig(cell.spec);
    ApplyObs(cctx, cfg);
    const netsim::ReplicationSummary summary =
        RunReplications(cfg, model, rep, cctx.Executor());
    ContributeObs(cctx, summary);

    const std::string where = "spec cell '" + cell.label + "'";
    for (std::size_t r = 0; r < summary.reports.size(); ++r) {
      RequireConserved(summary.reports[r], where, r);
    }

    if (g.verify_oracle) {
      // Oracle twin on identical streams: full routing recompute (flat)
      // or all-pairs head assignment (clustered).  Contributes no
      // observability output — it exists only to be compared against.
      netsim::NetSimConfig oracle = cfg;
      oracle.obs = obs::ObsConfig{};
      if (oracle.cluster.protocol == netsim::ClusterProtocolKind::kNone) {
        oracle.routing_update = netsim::RoutingUpdateMode::kFull;
      } else {
        oracle.cluster.assign = netsim::HeadAssignMode::kAllPairs;
      }
      const netsim::ReplicationSummary shadow =
          RunReplications(oracle, model, rep, cctx.Executor());
      for (std::size_t r = 0; r < summary.reports.size(); ++r) {
        RequireEqualReports(summary.reports[r], shadow.reports[r], where, r);
      }
    }

    double analytic_s = 0.0;
    if (g.verify_analytic) {
      const node::Network analytic_net(cfg.network, cfg.positions);
      const node::NetworkReport analytic =
          cfg.classes.empty()
              ? analytic_net.Evaluate(model)
              : analytic_net.Evaluate(model, netsim::PerNodeConfigs(cfg));
      analytic_s = analytic.network_lifetime_seconds;
      if (summary.first_death_s.observed != rep.replications) {
        throw util::Error(
            where + ": verify.analytic needs a death in every replication "
            "(observed " +
            std::to_string(summary.first_death_s.observed) + "/" +
            std::to_string(rep.replications) +
            "; raise run.horizon_s or shrink node.battery_mah)");
      }
      const double mean = summary.first_death_s.ci.mean;
      const double bound = std::max(3.0 * summary.first_death_s.ci.half_width,
                                    0.1 * analytic_s);
      if (std::abs(mean - analytic_s) > bound) {
        throw util::Error(
            where + ": simulated first death " + util::FormatFixed(mean, 1) +
            " s strayed from the analytic estimate " +
            util::FormatFixed(analytic_s, 1) + " s (bound " +
            util::FormatFixed(bound, 1) + " s)");
      }
    }

    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t events = 0;
    std::size_t healed = 0;
    for (const netsim::NetSimReport& report : summary.reports) {
      crashes += report.crashes;
      recoveries += report.recoveries;
      in_flight += report.in_flight;
      generated += report.packets.generated;
      delivered += report.packets.delivered;
      dropped += report.packets.TotalDropped();
      events += report.events;
      if (std::isfinite(report.heal_s)) ++healed;
    }

    std::vector<std::string> row{cell.label};
    for (const std::string& column : g.columns) {
      if (column == "generated") {
        row.push_back(std::to_string(generated));
      } else if (column == "delivered") {
        row.push_back(std::to_string(delivered));
      } else if (column == "dropped") {
        row.push_back(std::to_string(dropped));
      } else if (column == "crashes") {
        row.push_back(std::to_string(crashes));
      } else if (column == "recoveries") {
        row.push_back(std::to_string(recoveries));
      } else if (column == "events") {
        row.push_back(std::to_string(events));
      } else if (column == "in_flight") {
        row.push_back(std::to_string(in_flight));
      } else if (column == "delivery_ratio") {
        row.push_back(MetricCell(summary.delivery_ratio, 4));
      } else if (column == "first_death_s") {
        row.push_back(MetricCell(summary.first_death_s, 1));
      } else if (column == "partition_s") {
        row.push_back(MetricCell(summary.partition_s, 1));
      } else if (column == "healed") {
        row.push_back(ObservedCell(healed, summary.replications));
      } else {  // conserved — RequireConserved above hard-fails otherwise
        row.push_back("yes");
      }
    }
    if (g.verify_analytic) {
      const double mean = summary.first_death_s.ci.mean;
      row.push_back(util::FormatFixed(analytic_s, 1));
      row.push_back(
          util::FormatFixed(100.0 * std::abs(mean - analytic_s) / analytic_s,
                            2) +
          " %");
    }
    return row;
  };

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SpecCell& cell = cells[i];
    RunPointRow(ctx, table,
                "cell " + std::to_string(i) + ": " + cell.label, g.seed,
                cell.label,
                [&run_cell, &cell](const ScenarioContext& cctx,
                                   const PointEnv&) {
                  return run_cell(cctx, cell);
                });
  }

  results.AddNote(
      "every cell asserted packet conservation on every replication" +
      std::string(g.verify_oracle
                      ? "; every replication also ran against its "
                        "full-recompute oracle twin and matched field for "
                        "field"
                      : "") +
      std::string(g.verify_analytic
                      ? "; the simulated first death was checked against "
                        "the closed-form estimator within max(3 CI "
                        "half-widths, 10%)"
                      : "") +
      ".  All columns are deterministic per seed: any --threads value "
      "produces byte-identical output.");
  return results;
}

}  // namespace

ScenarioSpec ParseScenarioSpec(const std::string& json_text) {
  const util::JsonValue doc = util::ParseJson(json_text);
  if (!doc.is_object()) {
    SpecFail("expected a JSON object at $, got " + std::string(doc.TypeName()));
  }
  const ObjView root(doc, "$");
  const util::JsonValue* study = root.Raw("study");
  if (study == nullptr) {
    SpecFail(
        "missing required key 'study' at $ (one of: clustered, faults, "
        "generic, heterogeneous, lifetime, throughput)");
  }
  if (!study->is_string()) {
    SpecFail("$.study: expected a string, got " +
             std::string(study->TypeName()));
  }
  ScenarioSpec spec;
  spec.study = study->AsString();
  if (spec.study == "lifetime") {
    spec.lifetime = ParseLifetime(root);
  } else if (spec.study == "throughput") {
    spec.throughput = ParseThroughput(root);
  } else if (spec.study == "clustered") {
    spec.clustered = ParseClustered(root);
  } else if (spec.study == "heterogeneous") {
    spec.heterogeneous = ParseHeterogeneous(root);
  } else if (spec.study == "faults") {
    spec.faults = ParseFaults(root);
  } else if (spec.study == "generic") {
    spec.generic = ParseGeneric(root);
  } else {
    SpecFail("$.study: unknown study '" + spec.study +
             "' (one of: clustered, faults, generic, heterogeneous, "
             "lifetime, throughput)");
  }
  return spec;
}

ScenarioSpec LoadScenarioSpecFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::InvalidArgument("spec: cannot read file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return ParseScenarioSpec(text.str());
  } catch (const util::InvalidArgument& e) {
    throw util::InvalidArgument(path + ": " + e.what());
  }
}

ResultSet RunSpec(const ScenarioContext& ctx, const ScenarioSpec& spec) {
  if (spec.study == "lifetime") return RunLifetimeStudy(ctx, spec.lifetime);
  if (spec.study == "throughput") {
    return RunThroughputStudy(ctx, spec.throughput);
  }
  if (spec.study == "clustered") return RunClusteredStudy(ctx, spec.clustered);
  if (spec.study == "heterogeneous") {
    return RunHeterogeneousStudy(ctx, spec.heterogeneous);
  }
  if (spec.study == "faults") return RunFaultStudy(ctx, spec.faults);
  return RunGenericStudy(ctx, spec.generic);
}

}  // namespace wsn::scenario
