/// \file
/// Shared driver plumbing: the wsnctl subcommands and the thin mains the
/// bench_*/example artifact binaries reduce to.
///
///   wsnctl list                         all registered scenarios
///   wsnctl help <name>                  flags of one scenario
///   wsnctl run <name> [flags...]        run and print (--format, --threads)
///
/// Every path validates flags against the scenario's declared vocabulary
/// (unknown flags are a hard error) and honors --help.
#pragma once

#include <string>

namespace wsn::scenario {

/// Entry point for `wsnctl`.
int WsnctlMain(int argc, const char* const* argv);

/// Entry point for a thin artifact shim: run the named scenario with the
/// binary's own argv (no subcommand).  Returns a process exit code.
int RunScenarioMain(const std::string& name, int argc,
                    const char* const* argv);

}  // namespace wsn::scenario
