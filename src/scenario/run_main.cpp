#include "scenario/run_main.hpp"

#include <cstdio>
#include <iostream>
#include <limits>
#include <sstream>
#include <vector>

#include "obs/session.hpp"
#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace wsn::scenario {

namespace {

std::vector<util::FlagSpec> GlobalFlags() {
  return {
      {"threads", "T", "0",
       "worker threads for the sweep/replication grid (0 = hardware)"},
      {"format", "FMT", "table", "output format: table, csv or json"},
      {"metrics", "PATH", "",
       "write the merged obs metrics registry as JSON to PATH"},
      {"metrics-timings", "", "",
       "include wall-clock timing sections in the metrics file "
       "(machine-dependent, so off by default)"},
      {"trace", "PATH", "",
       "write the packet-lifecycle trace as JSONL to PATH"},
      {"trace-nodes", "CSV", "",
       "trace only these node indices (comma-separated; empty = all)"},
      {"trace-from", "S", "0", "trace events at simulated time >= S"},
      {"trace-until", "S", "inf", "trace events at simulated time < S"},
      {"trace-max", "N", "1000000", "max trace lines per replication"},
      {"log-level", "LVL", "warn",
       "log threshold: debug, info, warn, error or off"},
  };
}

/// "3,17,42" -> {3, 17, 42}; throws InvalidArgument on junk.
std::vector<std::size_t> ParseNodeList(const std::string& csv) {
  std::vector<std::size_t> nodes;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(token, &consumed);
      util::Require(consumed == token.size(), "trailing junk");
      nodes.push_back(static_cast<std::size_t>(v));
    } catch (const std::exception&) {
      throw util::InvalidArgument("--trace-nodes: bad node index '" + token +
                                  "'");
    }
  }
  return nodes;
}

obs::SessionOptions ObsOptionsFromArgs(const util::CliArgs& args) {
  obs::SessionOptions options;
  options.metrics_path = args.GetString("metrics", "");
  options.metrics_timings = args.GetBool("metrics-timings");
  options.trace_path = args.GetString("trace", "");
  options.trace.nodes = ParseNodeList(args.GetString("trace-nodes", ""));
  options.trace.from_s = args.GetDouble("trace-from", 0.0);
  options.trace.until_s = args.GetDouble(
      "trace-until", std::numeric_limits<double>::infinity());
  options.trace.max_events = args.GetCount("trace-max", 1'000'000, 1);
  return options;
}

std::vector<util::FlagSpec> AllFlags(const Scenario& scenario) {
  std::vector<util::FlagSpec> flags = scenario.Flags();
  for (util::FlagSpec& f : GlobalFlags()) flags.push_back(std::move(f));
  return flags;
}

std::string ScenarioHelp(const Scenario& scenario) {
  return util::RenderHelp(
      "wsnctl run " + scenario.Name() + " [flags]",
      scenario.Summary() + "\nreproduces: " + scenario.Artifact(),
      AllFlags(scenario));
}

/// Validate, execute and print one scenario.  Shared by `wsnctl run`
/// and the thin artifact shims.  `expected_positional` is the number of
/// non-flag tokens the invocation legitimately carries (subcommand +
/// scenario name for wsnctl, none for a shim); anything beyond that is
/// a flag typed without its dashes and must fail as loudly as an
/// unknown flag would.
int RunOne(const Scenario& scenario, const util::CliArgs& args,
           std::size_t expected_positional) {
  if (args.GetBool("help")) {
    std::cout << ScenarioHelp(scenario);
    return 0;
  }
  if (args.Positional().size() > expected_positional) {
    throw util::InvalidArgument(
        "unexpected argument '" + args.Positional()[expected_positional] +
        "' (flags are written --name=value; run with --help)");
  }
  util::RequireKnownFlags(args, AllFlags(scenario));
  util::SetLogLevel(util::ParseLogLevel(args.GetString("log-level", "warn")));
  const OutputFormat format =
      ParseOutputFormat(args.GetString("format", "table"));
  util::ParallelExecutor executor(args.GetCount("threads", 0));
  obs::Session obs_session(ObsOptionsFromArgs(args));

  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  ctx.obs = obs_session.Enabled() ? &obs_session : nullptr;
  const ResultSet results = scenario.Run(ctx);
  if (obs_session.MetricsEnabled() && obs_session.Merged().Empty()) {
    (util::LogWarn() << "scenario contributed no metrics; the --metrics "
                        "file will hold empty sections")
        .Kv("scenario", scenario.Name());
  }
  obs_session.WriteFiles();
  std::cout << results.Render(format);
  return 0;
}

/// Run a declarative spec file (`wsnctl run --file exp.json`) with the
/// same global-flag surface, executor and observability session a
/// registered scenario gets — the spec interpreter and the registry
/// wrappers share the study runners, so a preset file's output is
/// byte-identical to its compiled-in twin.
int RunSpecFile(const std::string& path, const util::CliArgs& args) {
  if (args.Positional().size() > 1) {
    throw util::InvalidArgument(
        "unexpected argument '" + args.Positional()[1] +
        "' (flags are written --name=value; run with --help)");
  }
  std::vector<util::FlagSpec> flags = GlobalFlags();
  flags.push_back({"file", "PATH", "", "declarative scenario spec to run"});
  util::RequireKnownFlags(args, flags);
  util::SetLogLevel(util::ParseLogLevel(args.GetString("log-level", "warn")));
  const OutputFormat format =
      ParseOutputFormat(args.GetString("format", "table"));
  const ScenarioSpec spec = LoadScenarioSpecFile(path);
  util::ParallelExecutor executor(args.GetCount("threads", 0));
  obs::Session obs_session(ObsOptionsFromArgs(args));

  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  ctx.obs = obs_session.Enabled() ? &obs_session : nullptr;
  const ResultSet results = RunSpec(ctx, spec);
  if (obs_session.MetricsEnabled() && obs_session.Merged().Empty()) {
    (util::LogWarn() << "spec contributed no metrics; the --metrics "
                        "file will hold empty sections")
        .Kv("file", path);
  }
  obs_session.WriteFiles();
  std::cout << results.Render(format);
  return 0;
}

int ListScenarios() {
  util::TextTable table({"name", "artifact", "summary"});
  for (const Scenario* s : ScenarioRegistry::Instance().All()) {
    table.AddRow({s->Name(), s->Artifact(), s->Summary()});
  }
  std::cout << table.Render();
  std::cout << "\nrun one with: wsnctl run <name> [--help]\n"
               "or run a declarative spec with: wsnctl run --file "
               "presets/<name>.json\n   (committed presets mirror the "
               "registered scenarios byte for byte; see docs/scenarios.md)\n";
  return 0;
}

const Scenario* FindOrComplain(const std::string& name) {
  const Scenario* s = ScenarioRegistry::Instance().Find(name);
  if (s == nullptr) {
    (util::LogError() << "unknown scenario (see `wsnctl list`)")
        .Kv("scenario", name);
  }
  return s;
}

int Usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  wsnctl list                    show registered scenarios\n"
        "  wsnctl help <scenario>         show a scenario's flags\n"
        "  wsnctl run <scenario> [flags]  run and print results\n"
        "  wsnctl run --file <spec.json>  run a declarative scenario spec\n";
  return code;
}

}  // namespace

int WsnctlMain(int argc, const char* const* argv) {
  try {
    const util::CliArgs args(argc, argv);
    const auto& positional = args.Positional();
    if (positional.empty()) {
      return Usage(args.GetBool("help") ? std::cout : std::cerr,
                   args.GetBool("help") ? 0 : 2);
    }
    const std::string& command = positional[0];
    if (command == "list") {
      // list/help take no flags; a typo'd flag must not pass silently.
      util::RequireKnownFlags(args, {});
      return ListScenarios();
    }
    if (command == "help") {
      if (positional.size() < 2) return Usage(std::cerr, 2);
      util::RequireKnownFlags(args, {});
      const Scenario* s = FindOrComplain(positional[1]);
      if (s == nullptr) return 2;
      std::cout << ScenarioHelp(*s);
      return 0;
    }
    if (command == "run") {
      const std::string file = args.GetString("file", "");
      if (!file.empty() && positional.size() >= 2) {
        throw util::InvalidArgument(
            "wsnctl run: pass either a scenario name or --file=<spec.json>, "
            "not both");
      }
      if (!file.empty()) return RunSpecFile(file, args);
      if (positional.size() < 2) return Usage(std::cerr, 2);
      const Scenario* s = FindOrComplain(positional[1]);
      if (s == nullptr) return 2;
      return RunOne(*s, args, 2);
    }
    (util::LogError() << "unknown command").Kv("command", command);
    return Usage(std::cerr, 2);
  } catch (const std::exception& e) {
    util::LogError() << e.what();
    return 1;
  }
}

int RunScenarioMain(const std::string& name, int argc,
                    const char* const* argv) {
  try {
    const Scenario* s = ScenarioRegistry::Instance().Find(name);
    if (s == nullptr) {
      (util::LogError() << "scenario is not registered").Kv("scenario", name);
      return 2;
    }
    return RunOne(*s, util::CliArgs(argc, argv), 0);
  } catch (const std::exception& e) {
    util::LogError() << e.what();
    return 1;
  }
}

}  // namespace wsn::scenario
