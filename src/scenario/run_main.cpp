#include "scenario/run_main.hpp"

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "scenario/harness.hpp"
#include "scenario/scenario.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/subproc.hpp"
#include "util/table.hpp"

namespace wsn::scenario {

namespace {

std::vector<util::FlagSpec> GlobalFlags() {
  return {
      {"threads", "T", "0",
       "worker threads for the sweep/replication grid (0 = hardware)"},
      {"format", "FMT", "table", "output format: table, csv or json"},
      {"metrics", "PATH", "",
       "write the merged obs metrics registry as JSON to PATH"},
      {"metrics-timings", "", "",
       "include wall-clock timing sections in the metrics file "
       "(machine-dependent, so off by default)"},
      {"trace", "PATH", "",
       "write the packet-lifecycle trace as JSONL to PATH"},
      {"trace-nodes", "CSV", "",
       "trace only these node indices (comma-separated; empty = all)"},
      {"trace-from", "S", "0", "trace events at simulated time >= S"},
      {"trace-until", "S", "inf", "trace events at simulated time < S"},
      {"trace-max", "N", "1000000", "max trace lines per replication"},
      {"log-level", "LVL", "warn",
       "log threshold: debug, info, warn, error or off"},
      // Sweep-point harness (docs/robustness.md): crash isolation,
      // deadlines/retry, graceful degradation and the resumable journal.
      {"isolate", "", "",
       "run each sweep point in a forked worker process (crash isolation)"},
      {"deadline", "S", "0",
       "wall-clock deadline per sweep point in seconds (implies --isolate)"},
      {"rss-limit", "MB", "0",
       "address-space cap per worker in MB (implies --isolate)"},
      {"retries", "N", "0",
       "retry a failed point up to N times with exponential backoff "
       "(implies --isolate)"},
      {"backoff", "S", "0.25",
       "delay before the first retry; doubles for each further retry"},
      {"keep-going", "", "",
       "record exhausted points as explicit error rows and finish the "
       "sweep (exit code 3) instead of aborting"},
      {"journal", "PATH", "",
       "append one fsync'd JSONL record per completed sweep point to PATH"},
      {"resume", "", "",
       "replay points already completed in the --journal file instead of "
       "re-running them"},
  };
}

HarnessOptions HarnessOptionsFromArgs(const util::CliArgs& args) {
  HarnessOptions o;
  o.isolate = args.GetBool("isolate");
  o.deadline_s = args.GetDouble("deadline", 0.0);
  o.rss_limit_mb = args.GetCount("rss-limit", 0);
  o.retries = args.GetCount("retries", 0);
  o.backoff_s = args.GetDouble("backoff", 0.25);
  o.keep_going = args.GetBool("keep-going");
  o.journal_path = args.GetString("journal", "");
  o.resume = args.GetBool("resume");
  o.threads = args.GetCount("threads", 0);
  util::Require(o.deadline_s >= 0.0, "--deadline must be >= 0");
  util::Require(o.backoff_s >= 0.0, "--backoff must be >= 0");
  if (o.resume && o.journal_path.empty()) {
    throw util::InvalidArgument("--resume requires --journal PATH");
  }
  return o;
}

/// A harness is constructed when any of its features is on; otherwise
/// ctx.harness stays null and studies take the historical AddRow path.
bool HarnessActive(const HarnessOptions& o) {
  return o.Isolating() || o.keep_going || !o.journal_path.empty();
}

/// Flags that select *how* a run executes rather than *what* it
/// computes.  The journal's run id must be stable across them: a resume
/// at --threads 4 of a journal written at --threads 1 is legal (and the
/// byte-identity tests exercise exactly that), as is resuming with a
/// different --format or deadline.
bool IsExecutionFlag(const std::string& name) {
  static const std::set<std::string> kExecutionFlags = {
      "threads",   "format",      "help",       "metrics", "metrics-timings",
      "trace",     "trace-nodes", "trace-from", "trace-until", "trace-max",
      "log-level", "isolate",     "deadline",   "rss-limit",   "retries",
      "backoff",   "keep-going",  "journal",    "resume",      "file",
  };
  return kExecutionFlags.count(name) > 0;
}

/// 16-hex run id: FNV over the run's identity (`scenario:<name>` or the
/// spec file's bytes) plus every non-execution flag, so a journal can
/// only be resumed by the command line that computes the same sweep.
std::string RunConfigId(const std::string& identity,
                        const util::CliArgs& args) {
  std::uint64_t h = util::Fnv1a64(identity);
  for (const std::string& name : args.FlagNames()) {
    if (IsExecutionFlag(name)) continue;
    h = util::Fnv1a64(name + "=" + args.GetString(name, "") + "\n", h);
  }
  return util::HexU64(h);
}

extern "C" void HarnessSignalHandler(int sig) {
  // Async-signal-safe interruption: reap the in-flight worker so it is
  // not orphaned, then exit with the conventional 128+signal status.
  // Journal durability needs no flushing here — every completed record
  // was already fsync'd when it was appended.
  util::KillActiveWorker();
  ::_exit(128 + sig);
}

void InstallHarnessSignalHandlers() {
  struct sigaction sa;
  sa.sa_handler = HarnessSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// "3,17,42" -> {3, 17, 42}; throws InvalidArgument on junk.
std::vector<std::size_t> ParseNodeList(const std::string& csv) {
  std::vector<std::size_t> nodes;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(token, &consumed);
      util::Require(consumed == token.size(), "trailing junk");
      nodes.push_back(static_cast<std::size_t>(v));
    } catch (const std::exception&) {
      throw util::InvalidArgument("--trace-nodes: bad node index '" + token +
                                  "'");
    }
  }
  return nodes;
}

obs::SessionOptions ObsOptionsFromArgs(const util::CliArgs& args) {
  obs::SessionOptions options;
  options.metrics_path = args.GetString("metrics", "");
  options.metrics_timings = args.GetBool("metrics-timings");
  options.trace_path = args.GetString("trace", "");
  options.trace.nodes = ParseNodeList(args.GetString("trace-nodes", ""));
  options.trace.from_s = args.GetDouble("trace-from", 0.0);
  options.trace.until_s = args.GetDouble(
      "trace-until", std::numeric_limits<double>::infinity());
  options.trace.max_events = args.GetCount("trace-max", 1'000'000, 1);
  return options;
}

/// Shared back half of RunOne/RunSpecFile: construct executor, obs
/// session and (when any of its features is on) the point harness, run
/// the scenario/spec, append the harness-errors table, contribute
/// harness counters, write artifacts and print.  Returns 0, or 3 when
/// points failed under --keep-going.
int DriveRun(const util::CliArgs& args, const std::string& run_identity,
             const std::string& no_metrics_what,
             const std::string& no_metrics_value,
             const std::function<ResultSet(const ScenarioContext&)>& run) {
  const OutputFormat format =
      ParseOutputFormat(args.GetString("format", "table"));
  util::ParallelExecutor executor(args.GetCount("threads", 0));
  obs::Session obs_session(ObsOptionsFromArgs(args));
  const HarnessOptions harness_options = HarnessOptionsFromArgs(args);
  std::unique_ptr<PointHarness> harness;
  if (HarnessActive(harness_options)) {
    harness = std::make_unique<PointHarness>(
        harness_options, RunConfigId(run_identity, args), executor);
    InstallHarnessSignalHandlers();
  }

  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  ctx.obs = obs_session.Enabled() ? &obs_session : nullptr;
  ctx.harness = harness.get();
  ResultSet results = run(ctx);

  if (harness != nullptr) {
    if (!harness->Failures().empty()) {
      ResultTable& errors = results.AddTable(
          "harness-errors", {"point", "failure", "attempts", "detail"});
      for (const PointFailure& f : harness->Failures()) {
        errors.AddRow({f.point, f.failure, std::to_string(f.attempts),
                       f.detail});
      }
    }
    const auto counters = harness->Counters();
    if (obs_session.MetricsEnabled()) {
      obs::MetricsSnapshot snapshot;
      snapshot.counters = counters;
      obs_session.Contribute(snapshot, "");
    }
    // Run-dependent by design (a resume replays, a clean run executes),
    // so this summary goes to stderr, never into the ResultSet — the
    // rendered output must stay byte-identical either way.
    (util::LogInfo() << "harness summary")
        .Kv("executed", counters.at("harness.points.executed"))
        .Kv("replayed", counters.at("harness.points.replayed"))
        .Kv("failed", counters.at("harness.points.failed"))
        .Kv("retries", counters.at("harness.worker.retries"));
  }

  if (obs_session.MetricsEnabled() && obs_session.Merged().Empty()) {
    (util::LogWarn() << "scenario contributed no metrics; the --metrics "
                        "file will hold empty sections")
        .Kv(no_metrics_what, no_metrics_value);
  }
  obs_session.WriteFiles();
  std::cout << results.Render(format);
  if (harness != nullptr && !harness->Failures().empty()) {
    (util::LogError() << "sweep finished with failed points (--keep-going)")
        .Kv("failed", harness->Failures().size());
    return 3;
  }
  return 0;
}

std::vector<util::FlagSpec> AllFlags(const Scenario& scenario) {
  std::vector<util::FlagSpec> flags = scenario.Flags();
  for (util::FlagSpec& f : GlobalFlags()) flags.push_back(std::move(f));
  return flags;
}

std::string ScenarioHelp(const Scenario& scenario) {
  return util::RenderHelp(
      "wsnctl run " + scenario.Name() + " [flags]",
      scenario.Summary() + "\nreproduces: " + scenario.Artifact(),
      AllFlags(scenario));
}

/// Validate, execute and print one scenario.  Shared by `wsnctl run`
/// and the thin artifact shims.  `expected_positional` is the number of
/// non-flag tokens the invocation legitimately carries (subcommand +
/// scenario name for wsnctl, none for a shim); anything beyond that is
/// a flag typed without its dashes and must fail as loudly as an
/// unknown flag would.
int RunOne(const Scenario& scenario, const util::CliArgs& args,
           std::size_t expected_positional) {
  if (args.GetBool("help")) {
    std::cout << ScenarioHelp(scenario);
    return 0;
  }
  if (args.Positional().size() > expected_positional) {
    throw util::InvalidArgument(
        "unexpected argument '" + args.Positional()[expected_positional] +
        "' (flags are written --name=value; run with --help)");
  }
  util::RequireKnownFlags(args, AllFlags(scenario));
  util::SetLogLevel(util::ParseLogLevel(args.GetString("log-level", "warn")));
  return DriveRun(args, "scenario:" + scenario.Name(), "scenario",
                  scenario.Name(),
                  [&scenario](const ScenarioContext& ctx) {
                    return scenario.Run(ctx);
                  });
}

/// Run a declarative spec file (`wsnctl run --file exp.json`) with the
/// same global-flag surface, executor and observability session a
/// registered scenario gets — the spec interpreter and the registry
/// wrappers share the study runners, so a preset file's output is
/// byte-identical to its compiled-in twin.
int RunSpecFile(const std::string& path, const util::CliArgs& args) {
  if (args.Positional().size() > 1) {
    throw util::InvalidArgument(
        "unexpected argument '" + args.Positional()[1] +
        "' (flags are written --name=value; run with --help)");
  }
  std::vector<util::FlagSpec> flags = GlobalFlags();
  flags.push_back({"file", "PATH", "", "declarative scenario spec to run"});
  util::RequireKnownFlags(args, flags);
  util::SetLogLevel(util::ParseLogLevel(args.GetString("log-level", "warn")));
  const ScenarioSpec spec = LoadScenarioSpecFile(path);
  // The journal run id for a --file run hashes the spec *content*, not
  // the path: moving or renaming the file must not orphan its journal,
  // while editing a single knob must.
  std::ifstream spec_in(path, std::ios::binary);
  std::ostringstream spec_text;
  spec_text << spec_in.rdbuf();
  return DriveRun(args, "file:" + spec_text.str(), "file", path,
                  [&spec](const ScenarioContext& ctx) {
                    return RunSpec(ctx, spec);
                  });
}

int ListScenarios() {
  util::TextTable table({"name", "artifact", "summary"});
  for (const Scenario* s : ScenarioRegistry::Instance().All()) {
    table.AddRow({s->Name(), s->Artifact(), s->Summary()});
  }
  std::cout << table.Render();
  std::cout << "\nrun one with: wsnctl run <name> [--help]\n"
               "or run a declarative spec with: wsnctl run --file "
               "presets/<name>.json\n   (committed presets mirror the "
               "registered scenarios byte for byte; see docs/scenarios.md)\n";
  return 0;
}

const Scenario* FindOrComplain(const std::string& name) {
  const Scenario* s = ScenarioRegistry::Instance().Find(name);
  if (s == nullptr) {
    (util::LogError() << "unknown scenario (see `wsnctl list`)")
        .Kv("scenario", name);
  }
  return s;
}

int Usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  wsnctl list                    show registered scenarios\n"
        "  wsnctl help <scenario>         show a scenario's flags\n"
        "  wsnctl run <scenario> [flags]  run and print results\n"
        "  wsnctl run --file <spec.json>  run a declarative scenario spec\n";
  return code;
}

}  // namespace

int WsnctlMain(int argc, const char* const* argv) {
  try {
    const util::CliArgs args(argc, argv);
    const auto& positional = args.Positional();
    if (positional.empty()) {
      return Usage(args.GetBool("help") ? std::cout : std::cerr,
                   args.GetBool("help") ? 0 : 2);
    }
    const std::string& command = positional[0];
    if (command == "list") {
      // list/help take no flags; a typo'd flag must not pass silently.
      util::RequireKnownFlags(args, {});
      return ListScenarios();
    }
    if (command == "help") {
      if (positional.size() < 2) return Usage(std::cerr, 2);
      util::RequireKnownFlags(args, {});
      const Scenario* s = FindOrComplain(positional[1]);
      if (s == nullptr) return 2;
      std::cout << ScenarioHelp(*s);
      return 0;
    }
    if (command == "run") {
      const std::string file = args.GetString("file", "");
      if (!file.empty() && positional.size() >= 2) {
        throw util::InvalidArgument(
            "wsnctl run: pass either a scenario name or --file=<spec.json>, "
            "not both");
      }
      if (!file.empty()) return RunSpecFile(file, args);
      if (positional.size() < 2) return Usage(std::cerr, 2);
      const Scenario* s = FindOrComplain(positional[1]);
      if (s == nullptr) return 2;
      return RunOne(*s, args, 2);
    }
    (util::LogError() << "unknown command").Kv("command", command);
    return Usage(std::cerr, 2);
  } catch (const std::exception& e) {
    util::LogError() << e.what();
    return 1;
  }
}

int RunScenarioMain(const std::string& name, int argc,
                    const char* const* argv) {
  try {
    const Scenario* s = ScenarioRegistry::Instance().Find(name);
    if (s == nullptr) {
      (util::LogError() << "scenario is not registered").Kv("scenario", name);
      return 2;
    }
    return RunOne(*s, util::CliArgs(argc, argv), 0);
  } catch (const std::exception& e) {
    util::LogError() << e.what();
    return 1;
  }
}

}  // namespace wsn::scenario
