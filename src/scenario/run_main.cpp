#include "scenario/run_main.hpp"

#include <cstdio>
#include <iostream>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace wsn::scenario {

namespace {

std::vector<util::FlagSpec> GlobalFlags() {
  return {
      {"threads", "T", "0",
       "worker threads for the sweep/replication grid (0 = hardware)"},
      {"format", "FMT", "table", "output format: table, csv or json"},
  };
}

std::vector<util::FlagSpec> AllFlags(const Scenario& scenario) {
  std::vector<util::FlagSpec> flags = scenario.Flags();
  for (util::FlagSpec& f : GlobalFlags()) flags.push_back(std::move(f));
  return flags;
}

std::string ScenarioHelp(const Scenario& scenario) {
  return util::RenderHelp(
      "wsnctl run " + scenario.Name() + " [flags]",
      scenario.Summary() + "\nreproduces: " + scenario.Artifact(),
      AllFlags(scenario));
}

/// Validate, execute and print one scenario.  Shared by `wsnctl run`
/// and the thin artifact shims.  `expected_positional` is the number of
/// non-flag tokens the invocation legitimately carries (subcommand +
/// scenario name for wsnctl, none for a shim); anything beyond that is
/// a flag typed without its dashes and must fail as loudly as an
/// unknown flag would.
int RunOne(const Scenario& scenario, const util::CliArgs& args,
           std::size_t expected_positional) {
  if (args.GetBool("help")) {
    std::cout << ScenarioHelp(scenario);
    return 0;
  }
  if (args.Positional().size() > expected_positional) {
    throw util::InvalidArgument(
        "unexpected argument '" + args.Positional()[expected_positional] +
        "' (flags are written --name=value; run with --help)");
  }
  util::RequireKnownFlags(args, AllFlags(scenario));
  const OutputFormat format =
      ParseOutputFormat(args.GetString("format", "table"));
  util::ParallelExecutor executor(args.GetCount("threads", 0));

  ScenarioContext ctx;
  ctx.args = &args;
  ctx.executor = &executor;
  const ResultSet results = scenario.Run(ctx);
  std::cout << results.Render(format);
  return 0;
}

int ListScenarios() {
  util::TextTable table({"name", "artifact", "summary"});
  for (const Scenario* s : ScenarioRegistry::Instance().All()) {
    table.AddRow({s->Name(), s->Artifact(), s->Summary()});
  }
  std::cout << table.Render();
  std::cout << "\nrun one with: wsnctl run <name> [--help]\n";
  return 0;
}

const Scenario* FindOrComplain(const std::string& name) {
  const Scenario* s = ScenarioRegistry::Instance().Find(name);
  if (s == nullptr) {
    std::cerr << "error: unknown scenario '" << name
              << "' (see `wsnctl list`)\n";
  }
  return s;
}

int Usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  wsnctl list                    show registered scenarios\n"
        "  wsnctl help <scenario>         show a scenario's flags\n"
        "  wsnctl run <scenario> [flags]  run and print results\n";
  return code;
}

}  // namespace

int WsnctlMain(int argc, const char* const* argv) {
  try {
    const util::CliArgs args(argc, argv);
    const auto& positional = args.Positional();
    if (positional.empty()) {
      return Usage(args.GetBool("help") ? std::cout : std::cerr,
                   args.GetBool("help") ? 0 : 2);
    }
    const std::string& command = positional[0];
    if (command == "list") {
      // list/help take no flags; a typo'd flag must not pass silently.
      util::RequireKnownFlags(args, {});
      return ListScenarios();
    }
    if (command == "help") {
      if (positional.size() < 2) return Usage(std::cerr, 2);
      util::RequireKnownFlags(args, {});
      const Scenario* s = FindOrComplain(positional[1]);
      if (s == nullptr) return 2;
      std::cout << ScenarioHelp(*s);
      return 0;
    }
    if (command == "run") {
      if (positional.size() < 2) return Usage(std::cerr, 2);
      const Scenario* s = FindOrComplain(positional[1]);
      if (s == nullptr) return 2;
      return RunOne(*s, args, 2);
    }
    std::cerr << "error: unknown command '" << command << "'\n";
    return Usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

int RunScenarioMain(const std::string& name, int argc,
                    const char* const* argv) {
  try {
    const Scenario* s = ScenarioRegistry::Instance().Find(name);
    if (s == nullptr) {
      std::cerr << "error: scenario '" << name << "' is not registered\n";
      return 2;
    }
    return RunOne(*s, util::CliArgs(argc, argv), 0);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace wsn::scenario
