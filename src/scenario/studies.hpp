/// \file
/// The netsim study runners behind the registered scenarios, factored
/// out of the scenarios_*.cpp registration files so two front ends can
/// share one byte-exact implementation:
///
///   * the registry wrappers (`wsnctl run netsim-lifetime ...`) parse
///     their flag vocabulary into a params struct and call the runner;
///   * the declarative spec interpreter (`wsnctl run --file exp.json`,
///     scenario/spec.hpp) maps a validated JSON spec onto the same
///     struct and calls the same runner.
///
/// Because both paths execute identical code on identical params, a
/// committed preset file is byte-identical to its compiled-in twin —
/// the property tests/test_scenario.cpp pins.  Params structs carry the
/// registry defaults in their member initializers; callers validate
/// their own input surface (CLI flags or spec paths) before calling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netsim/netsim.hpp"
#include "netsim/replication.hpp"
#include "scenario/scenario.hpp"
#include "util/statistics.hpp"

namespace wsn::scenario {

// ---------------------------------------------------------------- shared

/// Near-square grid deployment trimmed to exactly `n` nodes (the fault
/// study's and the generic interpreter's `nodes` topology).
std::vector<node::Position> NearSquareGrid(std::size_t n, double spacing);

/// Grid topology + node hardware shared by the clustered studies: a
/// node grid reporting toward corner sinks with small batteries so
/// every run shows the full lifetime arc within a short horizon.
struct GridStudyParams {
  std::size_t cols = 6;       ///< grid columns (>= 1)
  std::size_t rows = 6;       ///< grid rows (>= 1)
  double spacing_m = 15.0;    ///< grid spacing (m)
  double hop_m = 40.0;        ///< max radio hop range (m)
  double rate_hz = 2.0;       ///< per-node report rate (1/s)
  double battery_mah = 0.05;  ///< per-node battery capacity
  double horizon_s = 2000.0;  ///< simulation horizon (s)
  std::size_t sinks = 1;      ///< sink count, 1..4 (deployment corners)
};

/// Build the NetSimConfig implied by `p` (Msp430 CPU, 1024-bit samples,
/// 1% listen duty cycle, corner sinks).
netsim::NetSimConfig BuildGridConfig(const GridStudyParams& p);

/// Cluster-protocol knobs shared by the clustered studies.
struct ClusterKnobs {
  netsim::ClusterProtocolKind protocol =
      netsim::ClusterProtocolKind::kLeach;  ///< leach or static
  double head_fraction = 0.1;   ///< desired cluster-head fraction (0, 1]
  std::size_t static_heads = 0; ///< static head count (0 = derive)
  double round_s = 25.0;        ///< cluster round length (s)
  std::size_t aggregation = 4;  ///< member samples per upstream packet
};

/// Apply `knobs` onto `cfg.cluster`.
void ApplyClusterKnobs(netsim::NetSimConfig& cfg, const ClusterKnobs& knobs);

/// Standard lifetime metric rows (first death, partition, delivery
/// ratio, samples delivered) labelled with `label`.
void AddLifetimeRows(ResultTable& table, const std::string& label,
                     const netsim::ReplicationSummary& summary);

/// Mean of a per-report extractor over all replications.
template <typename Fn>
double MeanOverReports(const netsim::ReplicationSummary& summary, Fn&& fn) {
  util::RunningStats stats;
  for (const netsim::NetSimReport& report : summary.reports) {
    stats.Add(fn(report));
  }
  return stats.Mean();
}

/// Field-for-field comparison of one replication against its oracle
/// twin.  Every quantity compared is deterministic per (seed,
/// replication), so any mismatch is a real divergence between the
/// incremental repair paths and their full-recompute oracle.  Throws
/// util::Error "`where` diverged from its oracle at replication N
/// (field)" on mismatch.
void RequireEqualReports(const netsim::NetSimReport& a,
                         const netsim::NetSimReport& b,
                         const std::string& where, std::size_t rep);

/// Packet-conservation hard check: throws util::Error "`where` violated
/// packet conservation at replication N: ..." naming all four counters
/// unless report.Conserved().
void RequireConserved(const netsim::NetSimReport& report,
                      const std::string& where, std::size_t rep);

// --------------------------------------------------------------- studies

/// netsim-lifetime: deaths, re-routing and partition under bursty
/// (MMPP quiet/storm) traffic on a node grid with a corner sink.
struct LifetimeStudyParams {
  std::size_t cols = 10;
  std::size_t rows = 5;
  double spacing_m = 15.0;
  double hop_m = 40.0;
  double rate_hz = 2.0;
  double battery_mah = 0.05;
  double horizon_s = 4000.0;
  bool steady = false;  ///< steady Poisson instead of bursty MMPP
  std::size_t replications = 8;
  std::uint64_t seed = 2008;
};
ResultSet RunLifetimeStudy(const ScenarioContext& ctx,
                           const LifetimeStudyParams& p);

/// netsim-throughput: replications/second single-threaded vs fanned out
/// across the scenario executor.  The wall-clock columns make this the
/// one study whose output is NOT deterministic.
struct ThroughputStudyParams {
  std::size_t cols = 10;
  std::size_t rows = 10;
  double spacing_m = 25.0;
  double hop_m = 40.0;
  double rate_hz = 2.0;
  double horizon_s = 30.0;
  bool clustered = false;  ///< benchmark the LEACH data path instead
  std::size_t replications = 32;
  std::uint64_t seed = 2008;
};
ResultSet RunThroughputStudy(const ScenarioContext& ctx,
                             const ThroughputStudyParams& p);

/// netsim-clustered: LEACH-style (or static) clustered collection —
/// head rotation, in-cluster aggregation, multi-sink uplink.
struct ClusteredStudyParams {
  GridStudyParams grid;
  ClusterKnobs cluster;
  std::size_t replications = 8;
  std::uint64_t seed = 2008;
};
ResultSet RunClusteredStudy(const ScenarioContext& ctx,
                            const ClusteredStudyParams& p);

/// netsim-heterogeneous: a two-class (SEP-style) deployment cross-
/// validated against the analytic heterogeneous estimator.
struct HeterogeneousStudyParams {
  HeterogeneousStudyParams() { grid.rows = 4; }
  GridStudyParams grid;
  double advanced_fraction = 0.2;  ///< fraction of advanced nodes [0, 1]
  double battery_factor = 3.0;     ///< advanced battery multiplier (> 0)
  std::string placement = "hotspot";  ///< "hotspot" or "spread"
  std::size_t replications = 16;
  std::uint64_t seed = 2008;
};
ResultSet RunHeterogeneousStudy(const ScenarioContext& ctx,
                                const HeterogeneousStudyParams& p);

/// netsim-faults: a crash-rate x outage-length chaos sweep, flat and
/// clustered, every replication differentially verified against its
/// full-recompute oracle twin and the packet-conservation invariant.
struct FaultStudyParams {
  std::size_t nodes = 144;  ///< deployment size (>= 2), near-square grid
  double spacing_m = 15.0;
  double hop_m = 40.0;
  double rate_hz = 0.05;
  double horizon_s = 2000.0;
  std::vector<double> crash_rates{0.0002, 0.001};  ///< sweep axis (1/s)
  std::vector<double> outages{100.0, 400.0};       ///< sweep axis (s)
  std::size_t jam_windows = 2;
  double jam_radius_m = 45.0;
  double jam_duration_s = 0.0;  ///< 0 = horizon_s / 10
  double jam_p_loss = 0.5;
  std::size_t sink_outages = 1;
  double sink_outage_s = 0.0;  ///< 0 = horizon_s / 10
  std::size_t replications = 4;
  std::uint64_t seed = 2008;
};
ResultSet RunFaultStudy(const ScenarioContext& ctx,
                        const FaultStudyParams& p);

}  // namespace wsn::scenario
