/// \file
/// Declarative scenario specs: a validated JSON description of a netsim
/// experiment — topology, node hardware, traffic, MAC, routing mode,
/// cluster knobs, fault injection, sweep axes, replication effort,
/// output columns and verification switches — interpreted by the same
/// study runners the registered scenarios wrap (scenario/studies.hpp).
///
/// Two front ends, one implementation: `wsnctl run netsim-lifetime`
/// parses CLI flags into LifetimeStudyParams; `wsnctl run --file
/// exp.json` parses a spec into the same struct and calls the same
/// runner.  A committed preset file is therefore byte-identical to its
/// compiled-in twin (tests/test_scenario.cpp pins this for every file
/// under presets/).
///
/// The `study` key selects the interpretation:
///
///   * "lifetime" / "throughput" / "clustered" / "heterogeneous" /
///     "faults" re-express the registered scenarios — only the knobs
///     those scenarios expose are accepted;
///   * "generic" opens the full knob surface (MAC loss/LPL, routing
///     update mode, stop conditions, scalar faults, node classes, up to
///     three sweep axes, selectable output columns) plus the `verify`
///     switches: `oracle` runs every replication twice (production
///     incremental paths vs full-recompute oracle) and hard-fails on
///     any field divergence; `analytic` cross-checks the simulated
///     first death against the closed-form estimator.  Packet
///     conservation is asserted on every generic replication
///     unconditionally.
///
/// Validation is strict and named: unknown keys, wrong types,
/// out-of-range values and conflicting knobs are rejected with the full
/// JSON path ("spec: unknown key 'colz' at $.topology (accepted: ...)")
/// before anything runs.  docs/scenarios.md is the schema reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netsim/netsim.hpp"
#include "scenario/scenario.hpp"
#include "scenario/studies.hpp"

namespace wsn::scenario {

/// One sweep axis of a generic study: the spec path of a sweepable knob
/// and the values the sweep grid takes.
struct SweepAxis {
  std::string key;             ///< e.g. "node.rate" (see docs/scenarios.md)
  std::vector<double> values;  ///< >= 1 entries, each range-checked
};

/// The full knob surface of a `"study": "generic"` spec, with the
/// defaults the schema documents.  All knobs validated at parse time.
struct GenericSpec {
  // topology — either a cols x rows grid or a near-square `nodes` grid.
  std::size_t cols = 6;
  std::size_t rows = 6;
  std::size_t nodes = 0;  ///< > 0: near-square grid of exactly n nodes
  double spacing_m = 15.0;
  double hop_m = 40.0;
  std::size_t sinks = 1;  ///< 1..4, extra sinks at deployment corners

  // node hardware (Msp430 CPU, 1024-bit samples, 1% listen duty cycle)
  double rate_hz = 1.0;
  double battery_mah = 0.05;

  // traffic
  bool bursty = false;  ///< MMPP quiet/storm instead of steady Poisson

  // mac
  double p_loss = 0.0;
  double wakeup_interval_s = 0.0;
  std::size_t max_retries = 3;
  std::size_t max_queue = 1024;

  // routing (flat mode)
  netsim::RoutingUpdateMode routing_update =
      netsim::RoutingUpdateMode::kIncremental;
  bool rerouting = true;

  // cluster — enabled by the presence of the `cluster` section.
  bool clustered = false;
  ClusterKnobs cluster;
  netsim::HeadAssignMode assign = netsim::HeadAssignMode::kGrid;

  // classes — two-class deployment when advanced_fraction > 0.
  double advanced_fraction = 0.0;
  double battery_factor = 1.0;
  std::string placement = "hotspot";  ///< "hotspot" or "spread"

  // faults (scalars; 0 disables each class)
  double crash_rate_hz = 0.0;
  double outage_s = 0.0;
  std::size_t jam_windows = 0;
  double jam_radius_m = 45.0;
  double jam_duration_s = 0.0;  ///< 0 = horizon_s / 10
  double jam_p_loss = 0.5;
  std::size_t sink_outages = 0;
  double sink_outage_s = 0.0;  ///< 0 = horizon_s / 10

  // run
  double horizon_s = 1000.0;
  std::string stop_at = "horizon";  ///< "horizon" | "first_death" | "partition"
  std::size_t replications = 4;
  std::uint64_t seed = 2008;

  // sweep / output / verify
  std::vector<SweepAxis> sweep;       ///< <= 3 axes, <= 64 cells total
  std::vector<std::string> columns;   ///< empty = the default column set
  bool verify_oracle = false;
  bool verify_analytic = false;
};

/// A parsed, fully validated scenario spec.  `study` names which params
/// struct is live; the others hold their defaults.
struct ScenarioSpec {
  std::string study;  ///< "lifetime" | "throughput" | "clustered" |
                      ///< "heterogeneous" | "faults" | "generic"
  LifetimeStudyParams lifetime;
  ThroughputStudyParams throughput;
  ClusteredStudyParams clustered;
  HeterogeneousStudyParams heterogeneous;
  FaultStudyParams faults;
  GenericSpec generic;
};

/// Parse and validate a spec document.  Throws util::InvalidArgument
/// with a path-qualified message ("spec: ..." for schema violations,
/// "json: ..." for malformed JSON).
ScenarioSpec ParseScenarioSpec(const std::string& json_text);

/// Read `path` and parse it; errors are prefixed with the file path.
ScenarioSpec LoadScenarioSpecFile(const std::string& path);

/// Run a validated spec: dispatches the named studies onto their shared
/// runners and interprets generic specs (sweep grid, column selection,
/// conservation / oracle / analytic verification).
ResultSet RunSpec(const ScenarioContext& ctx, const ScenarioSpec& spec);

}  // namespace wsn::scenario
