#include "wsn/node.hpp"

#include "util/error.hpp"

namespace wsn::node {

using util::Require;

SensorNode::SensorNode(NodeConfig config)
    : config_(std::move(config)), radio_(config_.radio) {
  Require(config_.sample_bits > 0, "sample size must be positive");
  Require(config_.report_distance_m >= 0.0, "distance must be >= 0");
  Require(config_.listen_duty_cycle >= 0.0 &&
              config_.listen_duty_cycle <= 1.0,
          "listen duty cycle must be in [0,1]");
  Require(config_.report_fraction >= 0.0 && config_.report_fraction <= 1.0,
          "report fraction must be in [0,1]");
  config_.cpu_power.Validate();
}

NodePowerBreakdown SensorNode::AveragePower(
    const core::CpuEnergyModel& model) const {
  const core::ModelEvaluation eval = model.Evaluate(config_.cpu);

  NodePowerBreakdown out;
  out.cpu_mw = energy::AveragePowerMilliwatts(eval.shares, config_.cpu_power);

  // Radio: own reports plus relayed packets, all at the configured hop
  // distance; relayed packets are received first.
  const double own_tx_per_s =
      config_.cpu.arrival_rate * config_.report_fraction;
  const double tx_per_s = own_tx_per_s + relay_packets_per_second_;
  const double tx_j_per_s =
      tx_per_s *
      radio_.TransmitEnergy(config_.sample_bits, config_.report_distance_m);
  const double rx_j_per_s =
      relay_packets_per_second_ * radio_.ReceiveEnergy(config_.sample_bits);
  out.radio_tx_mw = (tx_j_per_s + rx_j_per_s) * 1000.0;
  out.radio_listen_mw =
      config_.listen_duty_cycle * config_.radio.listen_mw;
  out.radio_sleep_mw =
      (1.0 - config_.listen_duty_cycle) * config_.radio.sleep_mw;
  return out;
}

double SensorNode::LifetimeSeconds(const core::CpuEnergyModel& model) const {
  const energy::Battery battery(config_.battery_mah, config_.battery_volts);
  return battery.LifetimeSeconds(AveragePower(model).Total());
}

}  // namespace wsn::node
