#include "wsn/network.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace wsn::node {

using util::Require;

double Distance(const Position& a, const Position& b) noexcept {
  return std::sqrt(Distance2(a, b));
}

double Distance2(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Network::Network(NetworkConfig config, std::vector<Position> positions)
    : config_(std::move(config)), positions_(std::move(positions)) {
  Require(!positions_.empty(), "network needs at least one node");
  Require(config_.max_hop_m > 0.0, "hop range must be positive");
}

std::size_t Network::NextHop(std::size_t i) const {
  Require(i < positions_.size(), "node index out of range");
  const double to_sink = Distance(positions_[i], config_.sink);
  if (to_sink <= config_.max_hop_m) return i;  // direct to sink

  std::size_t best = i;
  double best_remaining = to_sink;
  const double hop2 = config_.max_hop_m * config_.max_hop_m;
  for (std::size_t j = 0; j < positions_.size(); ++j) {
    if (j == i) continue;
    if (Distance2(positions_[i], positions_[j]) > hop2) continue;
    const double remaining = Distance(positions_[j], config_.sink);
    if (remaining < best_remaining) {
      best_remaining = remaining;
      best = j;
    }
  }
  return best;
}

NetworkReport Network::Evaluate(const core::CpuEnergyModel& model) const {
  return Evaluate(model,
                  std::vector<NodeConfig>(positions_.size(), config_.node));
}

NetworkReport Network::Evaluate(const core::CpuEnergyModel& model,
                                const std::vector<NodeConfig>& per_node) const {
  const std::size_t n = positions_.size();
  Require(per_node.size() == n, "need one node config per node");

  // Propagate each node's report rate along its greedy path, summing the
  // forwarded packet rate per relay.
  std::vector<double> relay(n, 0.0);
  std::vector<std::size_t> hop(n);
  for (std::size_t i = 0; i < n; ++i) hop[i] = NextHop(i);

  for (std::size_t i = 0; i < n; ++i) {
    const double own_rate =
        per_node[i].cpu.arrival_rate * per_node[i].report_fraction;
    std::size_t cur = i;
    std::size_t guard = 0;
    while (hop[cur] != cur) {
      cur = hop[cur];
      relay[cur] += own_rate;
      if (++guard > n) {
        throw util::ModelError("routing loop: greedy next-hop cycled");
      }
    }
  }

  NetworkReport report;
  report.nodes.resize(n);
  double worst_lifetime = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    NodeConfig cfg = per_node[i];
    const std::size_t target = hop[i];
    cfg.report_distance_m =
        (target == i) ? Distance(positions_[i], config_.sink)
                      : Distance(positions_[i], positions_[target]);
    SensorNode node(cfg);
    node.SetRelayLoad(relay[i]);

    NodeReport& out = report.nodes[i];
    out.index = i;
    out.relay_packets_per_second = relay[i];
    out.next_hop = target;
    out.average_power_mw = node.AveragePower(model).Total();
    out.lifetime_seconds = node.LifetimeSeconds(model);
    if (out.lifetime_seconds < worst_lifetime) {
      worst_lifetime = out.lifetime_seconds;
      report.bottleneck_node = i;
    }
  }
  report.network_lifetime_seconds = worst_lifetime;
  return report;
}

std::vector<Position> MakeGrid(std::size_t cols, std::size_t rows,
                               double spacing_m) {
  Require(cols >= 1 && rows >= 1, "grid must be non-empty");
  Require(spacing_m > 0.0, "spacing must be positive");
  std::vector<Position> out;
  out.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.push_back({(static_cast<double>(c) + 1.0) * spacing_m,
                     (static_cast<double>(r) + 1.0) * spacing_m});
    }
  }
  return out;
}

}  // namespace wsn::node
