// Multi-node network lifetime estimation: nodes on a plane route their
// reports to a sink along greedy geographic paths; relays pay RX+TX for
// forwarded traffic, so lifetime is dominated by the hot path near the
// sink.  The per-node CPU draw comes from the paper's models.
#pragma once

#include <cstddef>
#include <vector>

#include "wsn/node.hpp"

namespace wsn::node {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Position& a, const Position& b) noexcept;

/// Squared Euclidean distance (m^2): the comparison-only form of
/// Distance.  Range tests and nearest-of searches compare in distance^2
/// (sqrt is monotone, so the argmin is the same node) and take one sqrt
/// only when the metric value itself is needed.
double Distance2(const Position& a, const Position& b) noexcept;

struct NetworkConfig {
  NodeConfig node;          ///< template configuration for every node
  Position sink{0.0, 0.0};
  double max_hop_m = 60.0;  ///< greedy routing: max radio range per hop
};

struct NodeReport {
  std::size_t index = 0;
  double relay_packets_per_second = 0.0;
  double average_power_mw = 0.0;
  double lifetime_seconds = 0.0;
  std::size_t next_hop = 0;  ///< own index means "direct to sink"
};

struct NetworkReport {
  std::vector<NodeReport> nodes;
  double network_lifetime_seconds = 0.0;  ///< first node death
  std::size_t bottleneck_node = 0;
};

class Network {
 public:
  Network(NetworkConfig config, std::vector<Position> positions);

  std::size_t Size() const noexcept { return positions_.size(); }

  /// Route every node's traffic greedily toward the sink and compute
  /// relay load, per-node power and lifetime under `model`.
  NetworkReport Evaluate(const core::CpuEnergyModel& model) const;

  /// Heterogeneous overload: node i uses `per_node[i]` (its own radio,
  /// duty cycle, battery and report rate) instead of the shared template.
  /// `per_node` must have one entry per node; routing geometry still
  /// comes from the NetworkConfig.  This is the analytic cross-check for
  /// netsim deployments built from named node classes.
  NetworkReport Evaluate(const core::CpuEnergyModel& model,
                         const std::vector<NodeConfig>& per_node) const;

  /// Greedy next hop of node i: the neighbour within range strictly
  /// closer to the sink that minimizes remaining distance; own index if
  /// the sink is reachable directly or no better neighbour exists.
  std::size_t NextHop(std::size_t i) const;

 private:
  NetworkConfig config_;
  std::vector<Position> positions_;
};

/// Evenly spaced grid helper for examples/tests.
std::vector<Position> MakeGrid(std::size_t cols, std::size_t rows,
                               double spacing_m);

}  // namespace wsn::node
