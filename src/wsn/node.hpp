// Whole-node energy model: the paper's CPU model composed with a radio
// and a battery — the application its introduction motivates (estimating
// and extending sensor-node lifetime).
#pragma once

#include <cstddef>

#include "core/model.hpp"
#include "core/params.hpp"
#include "energy/battery.hpp"
#include "energy/power_state.hpp"
#include "energy/radio.hpp"

namespace wsn::node {

struct NodeConfig {
  /// CPU workload/power-management parameters.  The sensing rate doubles
  /// as the CPU job arrival rate: every sample is a job.
  core::CpuParams cpu;
  energy::PowerStateTable cpu_power;  ///< e.g. energy::Pxa271()

  energy::RadioParameters radio;
  std::size_t sample_bits = 256;     ///< payload per reported sample
  double report_distance_m = 50.0;   ///< TX distance to parent/sink
  double listen_duty_cycle = 0.01;   ///< fraction of time in idle listen
  /// Fraction of samples actually transmitted (in-node aggregation).
  double report_fraction = 1.0;

  double battery_mah = 2500.0;
  double battery_volts = 3.0;
};

/// Per-component average power breakdown (mW).
struct NodePowerBreakdown {
  double cpu_mw = 0.0;
  double radio_tx_mw = 0.0;
  double radio_listen_mw = 0.0;
  double radio_sleep_mw = 0.0;

  double Total() const noexcept {
    return cpu_mw + radio_tx_mw + radio_listen_mw + radio_sleep_mw;
  }
};

class SensorNode {
 public:
  explicit SensorNode(NodeConfig config);

  const NodeConfig& Config() const noexcept { return config_; }

  /// Average power with the CPU state shares predicted by `model`.
  NodePowerBreakdown AveragePower(const core::CpuEnergyModel& model) const;

  /// Node lifetime (seconds) on the configured battery under `model`.
  double LifetimeSeconds(const core::CpuEnergyModel& model) const;

  /// Additional relay traffic (packets/s forwarded for other nodes);
  /// included in the radio TX/RX budget.
  void SetRelayLoad(double packets_per_second) noexcept {
    relay_packets_per_second_ = packets_per_second;
  }
  double RelayLoad() const noexcept { return relay_packets_per_second_; }

 private:
  NodeConfig config_;
  energy::RadioModel radio_;
  double relay_packets_per_second_ = 0.0;
};

}  // namespace wsn::node
