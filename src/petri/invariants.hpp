// Structural analysis: place (P-) and transition (T-) invariants via the
// Farkas algorithm on the incidence matrix.
//
// A P-invariant y >= 0 satisfies C^T y = 0: the weighted token sum
// sum_p y_p * m[p] is constant in every reachable marking — the standard
// sanity check that a net conserves what it should (e.g. the CPU net's
// Idle+Active token and its StandBy+PowerUp+CPU_ON token are conserved).
//
// A T-invariant x >= 0 satisfies C x = 0: firing each transition x_t times
// returns to the starting marking (cyclic behaviour certificate).
#pragma once

#include <cstddef>
#include <vector>

#include "petri/net.hpp"

namespace wsn::petri {

/// One invariant: integer weights per place (P) or transition (T).
using InvariantVector = std::vector<long>;

/// All minimal-support semi-positive P-invariants (weights normalized by
/// their gcd).  `max_rows` guards against combinatorial blow-up.
std::vector<InvariantVector> PlaceInvariants(const PetriNet& net,
                                             std::size_t max_rows = 4096);

/// All minimal-support semi-positive T-invariants.
std::vector<InvariantVector> TransitionInvariants(const PetriNet& net,
                                                  std::size_t max_rows = 4096);

/// Weighted token sum of `inv` in `m`.
long InvariantTokenSum(const InvariantVector& inv, const Marking& m);

/// True iff every place appears in some P-invariant with positive weight
/// (a covered net is structurally bounded).
bool IsCoveredByPlaceInvariants(const PetriNet& net,
                                const std::vector<InvariantVector>& invs);

}  // namespace wsn::petri
