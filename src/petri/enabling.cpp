#include "petri/enabling.hpp"

#include "util/error.hpp"

namespace wsn::petri {

using util::Require;

bool IsEnabled(const PetriNet& net, TransitionId t, const Marking& m) {
  const Transition& tr = net.GetTransition(t);
  for (const Arc& a : tr.arcs) {
    switch (a.kind) {
      case ArcKind::kInput:
        if (m[a.place] < a.multiplicity) return false;
        break;
      case ArcKind::kInhibitor:
        if (m[a.place] >= a.multiplicity) return false;
        break;
      case ArcKind::kOutput:
        break;
    }
  }
  return true;
}

void FireInPlace(const PetriNet& net, TransitionId t, Marking& m) {
  Require(IsEnabled(net, t, m), "firing a disabled transition");
  const Transition& tr = net.GetTransition(t);
  for (const Arc& a : tr.arcs) {
    if (a.kind == ArcKind::kInput) m[a.place] -= a.multiplicity;
  }
  for (const Arc& a : tr.arcs) {
    if (a.kind == ArcKind::kOutput) m[a.place] += a.multiplicity;
  }
}

Marking Fire(const PetriNet& net, TransitionId t, const Marking& m) {
  Marking out = m;
  FireInPlace(net, t, out);
  return out;
}

std::vector<TransitionId> EnabledTransitions(const PetriNet& net,
                                             const Marking& m) {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < net.TransitionCount(); ++t) {
    if (IsEnabled(net, t, m)) out.push_back(t);
  }
  return out;
}

std::vector<TransitionId> EnabledImmediateConflictSet(const PetriNet& net,
                                                      const Marking& m) {
  std::vector<TransitionId> out;
  int best_priority = 0;
  for (TransitionId t = 0; t < net.TransitionCount(); ++t) {
    const Transition& tr = net.GetTransition(t);
    if (!tr.IsImmediate() || !IsEnabled(net, t, m)) continue;
    if (out.empty() || tr.priority > best_priority) {
      out.clear();
      out.push_back(t);
      best_priority = tr.priority;
    } else if (tr.priority == best_priority) {
      out.push_back(t);
    }
  }
  return out;
}

std::vector<TransitionId> EnabledTimedTransitions(const PetriNet& net,
                                                  const Marking& m) {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < net.TransitionCount(); ++t) {
    if (net.GetTransition(t).kind == TransitionKind::kTimed &&
        IsEnabled(net, t, m)) {
      out.push_back(t);
    }
  }
  return out;
}

bool IsTangible(const PetriNet& net, const Marking& m) {
  for (TransitionId t = 0; t < net.TransitionCount(); ++t) {
    if (net.GetTransition(t).IsImmediate() && IsEnabled(net, t, m)) {
      return false;
    }
  }
  return true;
}

TransitionId SampleByWeight(const PetriNet& net,
                            const std::vector<TransitionId>& conflict_set,
                            util::Rng& rng) {
  Require(!conflict_set.empty(), "empty conflict set");
  if (conflict_set.size() == 1) return conflict_set.front();
  double total = 0.0;
  for (TransitionId t : conflict_set) {
    total += net.GetTransition(t).weight;
  }
  double u = util::UniformDouble(rng) * total;
  for (TransitionId t : conflict_set) {
    u -= net.GetTransition(t).weight;
    if (u <= 0.0) return t;
  }
  return conflict_set.back();
}

}  // namespace wsn::petri
