// Enabling rules and the token-moving Fire primitive — shared by the
// token-game simulator, the reachability generator and the CTMC solver so
// all engines agree on semantics by construction.
#pragma once

#include <vector>

#include "petri/net.hpp"
#include "util/rng.hpp"

namespace wsn::petri {

/// Standard EDSPN enabling: every input arc satisfied
/// (m[p] >= multiplicity) and every inhibitor arc satisfied
/// (m[p] < multiplicity).
bool IsEnabled(const PetriNet& net, TransitionId t, const Marking& m);

/// Fire `t` in `m` (must be enabled): consume input arcs, produce output
/// arcs.  Inhibitor arcs move no tokens.
Marking Fire(const PetriNet& net, TransitionId t, const Marking& m);

/// In-place variant.
void FireInPlace(const PetriNet& net, TransitionId t, Marking& m);

/// All enabled transitions (any kind) in `m`, ascending id.
std::vector<TransitionId> EnabledTransitions(const PetriNet& net,
                                             const Marking& m);

/// Enabled immediate transitions of maximal priority in `m` (the conflict
/// set that competes by weight).  Empty iff the marking is tangible.
std::vector<TransitionId> EnabledImmediateConflictSet(const PetriNet& net,
                                                      const Marking& m);

/// Enabled timed transitions in `m` (only meaningful for tangible m).
std::vector<TransitionId> EnabledTimedTransitions(const PetriNet& net,
                                                  const Marking& m);

/// True iff no immediate transition is enabled.
bool IsTangible(const PetriNet& net, const Marking& m);

/// Pick one transition from a non-empty conflict set proportionally to
/// transition weights.
TransitionId SampleByWeight(const PetriNet& net,
                            const std::vector<TransitionId>& conflict_set,
                            util::Rng& rng);

}  // namespace wsn::petri
