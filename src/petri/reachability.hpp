// Reachability analysis: full state-space exploration for structural
// questions (boundedness, deadlock detection) and tangible reachability
// with vanishing-marking elimination — the front half of the numerical
// SPN solver.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "petri/net.hpp"

namespace wsn::petri {

/// Hash functor so Markings can key unordered containers.
struct MarkingHash {
  std::size_t operator()(const Marking& m) const noexcept;
};

struct ReachabilityOptions {
  std::size_t max_markings = 1u << 20;   ///< exploration cap (throws beyond)
  std::uint32_t max_tokens_per_place = 1u << 20;  ///< unboundedness guard
  std::size_t max_vanishing_depth = 1u << 16;     ///< immediate-loop guard
};

/// An edge of the full reachability graph.
struct ReachabilityEdge {
  std::size_t from;      ///< marking index
  TransitionId transition;
  std::size_t to;        ///< marking index
};

/// Full reachability graph (tangible and vanishing markings alike).
struct ReachabilityGraph {
  std::vector<Marking> markings;
  std::vector<ReachabilityEdge> edges;
  std::vector<bool> tangible;  ///< per marking
  bool complete = true;        ///< false if the exploration cap was hit

  std::size_t Size() const noexcept { return markings.size(); }
  /// Markings with no enabled transitions at all.
  std::vector<std::size_t> DeadMarkings(const PetriNet& net) const;
  /// Maximum token count observed in any place (bound of the net if
  /// exploration completed).
  std::uint32_t MaxTokens() const noexcept;
};

/// Breadth-first exploration of every reachable marking.
ReachabilityGraph ExploreReachability(const PetriNet& net,
                                      const ReachabilityOptions& opts = {});

/// Probability distribution over tangible markings reached from `m` by
/// resolving immediate transitions (priorities, then weights).  If `m` is
/// already tangible the result is {m: 1}.  Throws ModelError on vanishing
/// loops (a cycle of immediate transitions reachable with probability 1
/// never reaches a tangible marking).
std::unordered_map<Marking, double, MarkingHash> ResolveVanishingDistribution(
    const PetriNet& net, const Marking& m,
    const ReachabilityOptions& opts = {});

/// Tangible reachability graph: states are tangible markings; edges carry
/// exponential rates with vanishing chains already folded in.  Only valid
/// for nets whose timed transitions are all exponential (checked).
struct TangibleEdge {
  std::size_t from;
  TransitionId via;    ///< the timed transition that initiated the move
  std::size_t to;
  double rate;         ///< exponential rate x vanishing-path probability
};

struct TangibleGraph {
  std::vector<Marking> markings;                 ///< tangible only
  std::vector<TangibleEdge> edges;
  std::vector<double> initial_distribution;      ///< over markings
};

TangibleGraph BuildTangibleGraph(const PetriNet& net,
                                 const ReachabilityOptions& opts = {});

}  // namespace wsn::petri
