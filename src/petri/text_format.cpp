#include "petri/text_format.hpp"

#include <sstream>

#include "util/error.hpp"

namespace wsn::petri {

using util::InvalidArgument;
using util::Require;

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

[[noreturn]] void Fail(std::size_t line_no, const std::string& message) {
  throw InvalidArgument(".spn line " + std::to_string(line_no) + ": " +
                        message);
}

double ParseDouble(const std::string& token, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) Fail(line_no, "bad number '" + token + "'");
    return v;
  } catch (const std::exception&) {
    Fail(line_no, "bad number '" + token + "'");
  }
}

long ParseLong(const std::string& token, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const long v = std::stol(token, &used);
    if (used != token.size()) Fail(line_no, "bad integer '" + token + "'");
    return v;
  } catch (const std::exception&) {
    Fail(line_no, "bad integer '" + token + "'");
  }
}

}  // namespace

std::string SerializeNet(const PetriNet& net) {
  std::ostringstream os;
  os << "# EDSPN, " << net.PlaceCount() << " places, "
     << net.TransitionCount() << " transitions\n";
  for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
    const Place& place = net.GetPlace(p);
    os << "place " << place.name;
    if (place.initial_tokens != 0) os << " " << place.initial_tokens;
    os << "\n";
  }
  for (std::size_t t = 0; t < net.TransitionCount(); ++t) {
    const Transition& tr = net.GetTransition(t);
    os << "transition " << tr.name << " ";
    if (tr.IsImmediate()) {
      os << "immediate priority=" << tr.priority << " weight="
         << FormatDouble(tr.weight);
    } else {
      std::visit(
          [&os](const auto& d) {
            using T = std::decay_t<decltype(d)>;
            if constexpr (std::is_same_v<T, util::Exponential>) {
              os << "exp " << FormatDouble(d.rate);
            } else if constexpr (std::is_same_v<T, util::Deterministic>) {
              os << "det " << FormatDouble(d.value);
            } else if constexpr (std::is_same_v<T, util::Erlang>) {
              os << "erlang " << d.k << " " << FormatDouble(d.rate);
            } else if constexpr (std::is_same_v<T, util::Uniform>) {
              os << "uniform " << FormatDouble(d.low) << " "
                 << FormatDouble(d.high);
            } else {
              throw InvalidArgument(
                  "serialization supports immediate/exp/det/erlang/uniform "
                  "transitions only");
            }
          },
          tr.delay->AsVariant());
    }
    os << "\n";
  }
  for (std::size_t t = 0; t < net.TransitionCount(); ++t) {
    const Transition& tr = net.GetTransition(t);
    for (const Arc& a : tr.arcs) {
      const char* kind = a.kind == ArcKind::kInput      ? "in"
                         : a.kind == ArcKind::kOutput   ? "out"
                                                        : "inhibit";
      os << "arc " << kind << " " << tr.name << " "
         << net.GetPlace(a.place).name;
      if (a.multiplicity != 1) os << " " << a.multiplicity;
      os << "\n";
    }
  }
  return os.str();
}

PetriNet ParseNet(const std::string& text) {
  PetriNet net;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;

    const std::string& directive = tokens[0];
    if (directive == "place") {
      if (tokens.size() < 2 || tokens.size() > 3) {
        Fail(line_no, "expected: place <name> [tokens]");
      }
      std::uint32_t tokens0 = 0;
      if (tokens.size() == 3) {
        const long v = ParseLong(tokens[2], line_no);
        if (v < 0) Fail(line_no, "token count must be >= 0");
        tokens0 = static_cast<std::uint32_t>(v);
      }
      net.AddPlace(tokens[1], tokens0);
    } else if (directive == "transition") {
      if (tokens.size() < 3) {
        Fail(line_no, "expected: transition <name> <kind> ...");
      }
      const std::string& name = tokens[1];
      const std::string& kind = tokens[2];
      if (kind == "immediate") {
        int priority = 0;
        double weight = 1.0;
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          const auto eq = tokens[i].find('=');
          if (eq == std::string::npos) {
            Fail(line_no, "expected key=value, got '" + tokens[i] + "'");
          }
          const std::string key = tokens[i].substr(0, eq);
          const std::string value = tokens[i].substr(eq + 1);
          if (key == "priority") {
            priority = static_cast<int>(ParseLong(value, line_no));
          } else if (key == "weight") {
            weight = ParseDouble(value, line_no);
          } else {
            Fail(line_no, "unknown immediate attribute '" + key + "'");
          }
        }
        net.AddImmediateTransition(name, priority, weight);
      } else if (kind == "exp") {
        if (tokens.size() != 4) Fail(line_no, "expected: exp <rate>");
        net.AddExponentialTransition(name, ParseDouble(tokens[3], line_no));
      } else if (kind == "det") {
        if (tokens.size() != 4) Fail(line_no, "expected: det <delay>");
        net.AddDeterministicTransition(name, ParseDouble(tokens[3], line_no));
      } else if (kind == "erlang") {
        if (tokens.size() != 5) Fail(line_no, "expected: erlang <k> <rate>");
        net.AddTimedTransition(
            name, util::Distribution(util::Erlang{
                      static_cast<int>(ParseLong(tokens[3], line_no)),
                      ParseDouble(tokens[4], line_no)}));
      } else if (kind == "uniform") {
        if (tokens.size() != 5) {
          Fail(line_no, "expected: uniform <low> <high>");
        }
        net.AddTimedTransition(
            name, util::Distribution(util::Uniform{
                      ParseDouble(tokens[3], line_no),
                      ParseDouble(tokens[4], line_no)}));
      } else {
        Fail(line_no, "unknown transition kind '" + kind + "'");
      }
    } else if (directive == "arc") {
      if (tokens.size() < 4 || tokens.size() > 5) {
        Fail(line_no, "expected: arc <in|out|inhibit> <transition> <place> "
                      "[multiplicity]");
      }
      std::uint32_t mult = 1;
      if (tokens.size() == 5) {
        const long v = ParseLong(tokens[4], line_no);
        if (v < 1) Fail(line_no, "multiplicity must be >= 1");
        mult = static_cast<std::uint32_t>(v);
      }
      TransitionId t = 0;
      PlaceId p = 0;
      try {
        t = net.TransitionByName(tokens[2]);
        p = net.PlaceByName(tokens[3]);
      } catch (const InvalidArgument& e) {
        Fail(line_no, e.what());
      }
      if (tokens[1] == "in") {
        net.AddInputArc(t, p, mult);
      } else if (tokens[1] == "out") {
        net.AddOutputArc(t, p, mult);
      } else if (tokens[1] == "inhibit") {
        net.AddInhibitorArc(t, p, mult);
      } else {
        Fail(line_no, "unknown arc kind '" + tokens[1] + "'");
      }
    } else {
      Fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  net.Validate();
  return net;
}

void WriteNet(std::ostream& os, const PetriNet& net) {
  os << SerializeNet(net);
}

PetriNet ReadNet(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return ParseNet(buffer.str());
}

}  // namespace wsn::petri
