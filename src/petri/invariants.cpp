#include "petri/invariants.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace wsn::petri {

using util::ModelError;
using util::Require;

namespace {

long VecGcd(const std::vector<long>& v) {
  long g = 0;
  for (long x : v) g = std::gcd(g, std::abs(x));
  return g == 0 ? 1 : g;
}

/// Farkas algorithm: find minimal semi-positive solutions y >= 0 of
/// A y = 0 by row combination on the tableau [A^T | I].
///
/// `a` has `rows` constraint rows and `cols` unknowns; we operate on the
/// tableau rows, one per unknown... concretely we maintain candidate rows
/// (constraint_part, identity_part) where each candidate is a non-negative
/// combination of unit vectors; each elimination step zeroes one
/// constraint coordinate.
std::vector<InvariantVector> Farkas(
    const std::vector<std::vector<long>>& a,  // constraints x unknowns
    std::size_t max_rows) {
  const std::size_t n_constraints = a.size();
  const std::size_t n_unknowns = n_constraints ? a[0].size() : 0;
  if (n_unknowns == 0) return {};

  struct Row {
    std::vector<long> c;  // residual constraint values (per constraint)
    std::vector<long> y;  // combination coefficients (the invariant)
  };

  std::vector<Row> rows(n_unknowns);
  for (std::size_t u = 0; u < n_unknowns; ++u) {
    rows[u].c.resize(n_constraints);
    for (std::size_t k = 0; k < n_constraints; ++k) rows[u].c[k] = a[k][u];
    rows[u].y.assign(n_unknowns, 0);
    rows[u].y[u] = 1;
  }

  for (std::size_t k = 0; k < n_constraints; ++k) {
    std::vector<Row> next;
    std::vector<const Row*> pos, neg;
    for (const Row& r : rows) {
      if (r.c[k] > 0) {
        pos.push_back(&r);
      } else if (r.c[k] < 0) {
        neg.push_back(&r);
      } else {
        next.push_back(r);
      }
    }
    for (const Row* p : pos) {
      for (const Row* q : neg) {
        Row combo;
        const long alpha = -q->c[k];
        const long beta = p->c[k];
        combo.c.resize(n_constraints);
        for (std::size_t j = 0; j < n_constraints; ++j) {
          combo.c[j] = alpha * p->c[j] + beta * q->c[j];
        }
        combo.y.resize(n_unknowns);
        for (std::size_t j = 0; j < n_unknowns; ++j) {
          combo.y[j] = alpha * p->y[j] + beta * q->y[j];
        }
        const long g = std::gcd(VecGcd(combo.c), VecGcd(combo.y));
        if (g > 1) {
          for (long& v : combo.c) v /= g;
          for (long& v : combo.y) v /= g;
        }
        next.push_back(std::move(combo));
        if (next.size() > max_rows) {
          throw ModelError(
              "Farkas tableau exceeded " + std::to_string(max_rows) +
              " rows; the net has too many invariant candidates");
        }
      }
    }
    rows = std::move(next);
  }

  // Rows now satisfy all constraints; normalize, dedupe, keep minimal
  // support only.
  std::vector<InvariantVector> invs;
  for (Row& r : rows) {
    const long g = VecGcd(r.y);
    for (long& v : r.y) v /= g;
    bool nonzero = false;
    for (long v : r.y) {
      Require(v >= 0, "Farkas produced a negative coefficient (bug)");
      if (v != 0) nonzero = true;
    }
    if (nonzero) invs.push_back(std::move(r.y));
  }
  std::sort(invs.begin(), invs.end());
  invs.erase(std::unique(invs.begin(), invs.end()), invs.end());

  // Minimal support: drop any invariant whose support strictly contains
  // another invariant's support.
  auto support_subset = [](const InvariantVector& small,
                           const InvariantVector& big) {
    for (std::size_t i = 0; i < small.size(); ++i) {
      if (small[i] != 0 && big[i] == 0) return false;
    }
    return true;
  };
  std::vector<InvariantVector> minimal;
  for (std::size_t i = 0; i < invs.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < invs.size() && !dominated; ++j) {
      if (i == j) continue;
      if (support_subset(invs[j], invs[i]) && invs[j] != invs[i]) {
        dominated = true;
      }
    }
    if (!dominated) minimal.push_back(invs[i]);
  }
  return minimal;
}

}  // namespace

std::vector<InvariantVector> PlaceInvariants(const PetriNet& net,
                                             std::size_t max_rows) {
  // Constraints: for each transition t, sum_p C[t][p] y_p = 0.
  return Farkas(net.IncidenceMatrix(), max_rows);
}

std::vector<InvariantVector> TransitionInvariants(const PetriNet& net,
                                                  std::size_t max_rows) {
  // Constraints: for each place p, sum_t C[t][p] x_t = 0 (transpose).
  const auto c = net.IncidenceMatrix();
  std::vector<std::vector<long>> ct(
      net.PlaceCount(), std::vector<long>(net.TransitionCount(), 0));
  for (std::size_t t = 0; t < net.TransitionCount(); ++t) {
    for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
      ct[p][t] = c[t][p];
    }
  }
  return Farkas(ct, max_rows);
}

long InvariantTokenSum(const InvariantVector& inv, const Marking& m) {
  Require(inv.size() == m.size(), "invariant/marking size mismatch");
  long sum = 0;
  for (std::size_t p = 0; p < m.size(); ++p) {
    sum += inv[p] * static_cast<long>(m[p]);
  }
  return sum;
}

bool IsCoveredByPlaceInvariants(const PetriNet& net,
                                const std::vector<InvariantVector>& invs) {
  for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
    bool covered = false;
    for (const InvariantVector& inv : invs) {
      if (inv.size() == net.PlaceCount() && inv[p] > 0) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace wsn::petri
