#include "petri/net.hpp"

#include <unordered_set>

#include "util/error.hpp"

namespace wsn::petri {

using util::InvalidArgument;
using util::ModelError;
using util::Require;

PlaceId PetriNet::AddPlace(std::string name, std::uint32_t initial_tokens) {
  places_.push_back({std::move(name), initial_tokens});
  return places_.size() - 1;
}

TransitionId PetriNet::AddImmediateTransition(std::string name, int priority,
                                              double weight) {
  Require(weight > 0.0, "immediate transition weight must be positive");
  Transition t;
  t.name = std::move(name);
  t.kind = TransitionKind::kImmediate;
  t.priority = priority;
  t.weight = weight;
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

TransitionId PetriNet::AddTimedTransition(std::string name,
                                          util::Distribution delay) {
  Transition t;
  t.name = std::move(name);
  t.kind = TransitionKind::kTimed;
  t.delay = std::move(delay);
  transitions_.push_back(std::move(t));
  return transitions_.size() - 1;
}

TransitionId PetriNet::AddExponentialTransition(std::string name,
                                                double rate) {
  return AddTimedTransition(std::move(name),
                            util::Distribution(util::Exponential{rate}));
}

TransitionId PetriNet::AddDeterministicTransition(std::string name,
                                                  double delay) {
  return AddTimedTransition(std::move(name),
                            util::Distribution(util::Deterministic{delay}));
}

void PetriNet::CheckIds(TransitionId t, PlaceId p) const {
  Require(t < transitions_.size(), "transition id out of range");
  Require(p < places_.size(), "place id out of range");
}

void PetriNet::AddInputArc(TransitionId t, PlaceId p,
                           std::uint32_t multiplicity) {
  CheckIds(t, p);
  Require(multiplicity >= 1, "arc multiplicity must be >= 1");
  transitions_[t].arcs.push_back({ArcKind::kInput, p, multiplicity});
}

void PetriNet::AddOutputArc(TransitionId t, PlaceId p,
                            std::uint32_t multiplicity) {
  CheckIds(t, p);
  Require(multiplicity >= 1, "arc multiplicity must be >= 1");
  transitions_[t].arcs.push_back({ArcKind::kOutput, p, multiplicity});
}

void PetriNet::AddInhibitorArc(TransitionId t, PlaceId p,
                               std::uint32_t multiplicity) {
  CheckIds(t, p);
  Require(multiplicity >= 1, "arc multiplicity must be >= 1");
  transitions_[t].arcs.push_back({ArcKind::kInhibitor, p, multiplicity});
}

const Place& PetriNet::GetPlace(PlaceId p) const {
  Require(p < places_.size(), "place id out of range");
  return places_[p];
}

const Transition& PetriNet::GetTransition(TransitionId t) const {
  Require(t < transitions_.size(), "transition id out of range");
  return transitions_[t];
}

PlaceId PetriNet::PlaceByName(const std::string& name) const {
  for (std::size_t i = 0; i < places_.size(); ++i) {
    if (places_[i].name == name) return i;
  }
  throw InvalidArgument("no place named '" + name + "'");
}

TransitionId PetriNet::TransitionByName(const std::string& name) const {
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].name == name) return i;
  }
  throw InvalidArgument("no transition named '" + name + "'");
}

Marking PetriNet::InitialMarking() const {
  Marking m(places_.size());
  for (std::size_t i = 0; i < places_.size(); ++i) {
    m[i] = places_[i].initial_tokens;
  }
  return m;
}

bool PetriNet::AllTimedExponential() const noexcept {
  for (const Transition& t : transitions_) {
    if (t.kind == TransitionKind::kTimed && t.delay &&
        !t.delay->IsMemoryless()) {
      return false;
    }
  }
  return true;
}

bool PetriNet::HasDeterministic() const noexcept {
  for (const Transition& t : transitions_) {
    if (t.kind == TransitionKind::kTimed && t.delay &&
        t.delay->IsDeterministic()) {
      return true;
    }
  }
  return false;
}

void PetriNet::Validate() const {
  if (places_.empty()) throw ModelError("net has no places");
  if (transitions_.empty()) throw ModelError("net has no transitions");

  std::unordered_set<std::string> names;
  for (const Place& p : places_) {
    if (!names.insert("p:" + p.name).second) {
      throw ModelError("duplicate place name '" + p.name + "'");
    }
  }
  for (const Transition& t : transitions_) {
    if (!names.insert("t:" + t.name).second) {
      throw ModelError("duplicate transition name '" + t.name + "'");
    }
    if (t.arcs.empty()) {
      throw ModelError("transition '" + t.name + "' has no arcs");
    }
    if (t.kind == TransitionKind::kTimed && !t.delay.has_value()) {
      throw ModelError("timed transition '" + t.name + "' has no delay");
    }
    bool has_input_or_inhibitor = false;
    for (const Arc& a : t.arcs) {
      if (a.kind != ArcKind::kOutput) has_input_or_inhibitor = true;
    }
    if (!has_input_or_inhibitor && t.kind == TransitionKind::kImmediate) {
      throw ModelError("immediate transition '" + t.name +
                       "' is always enabled (no input/inhibitor arcs): "
                       "the net would livelock in zero time");
    }
  }
}

std::vector<std::vector<long>> PetriNet::IncidenceMatrix() const {
  std::vector<std::vector<long>> c(
      transitions_.size(), std::vector<long>(places_.size(), 0));
  for (std::size_t t = 0; t < transitions_.size(); ++t) {
    for (const Arc& a : transitions_[t].arcs) {
      if (a.kind == ArcKind::kInput) {
        c[t][a.place] -= static_cast<long>(a.multiplicity);
      } else if (a.kind == ArcKind::kOutput) {
        c[t][a.place] += static_cast<long>(a.multiplicity);
      }
    }
  }
  return c;
}

}  // namespace wsn::petri
