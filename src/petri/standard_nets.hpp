// A small library of classic nets with known analytical behaviour.
// They serve three purposes: validation targets for the simulator and
// solver (M/M/1, M/M/1/K), teaching examples, and regression fixtures.
#pragma once

#include <cstdint>

#include "petri/net.hpp"

namespace wsn::petri {

/// M/M/1/K queue as an SPN: place "queue" holds jobs, exponential
/// "arrive" (rate lambda, inhibited at K) and "serve" (rate mu).
/// Steady state matches markov::Mm1k exactly.
PetriNet MakeMm1kNet(double lambda, double mu, std::uint32_t capacity);

/// Cyclic two-state machine: ping/pong with exponential transitions.
/// pi(ping) = mu/(lambda+mu) in steady state.
PetriNet MakePingPongNet(double rate_ping_to_pong, double rate_pong_to_ping);

/// Bounded producer/consumer with an intermediate buffer of size `buffer`:
/// exercises inhibitor arcs and immediate transitions together.
PetriNet MakeProducerConsumerNet(double produce_rate, double consume_rate,
                                 std::uint32_t buffer);

/// Fork-join: one token forks into `branches` parallel exponential
/// activities that must all complete before the join fires.  The marking
/// m(done) alternates 0/1; P/T-invariants cover the net.
PetriNet MakeForkJoinNet(std::uint32_t branches, double branch_rate);

/// Dining-philosophers-style shared-resource net with `users` competing
/// over one resource token via immediate acquire transitions (weights
/// resolve the conflict).  Used to test weighted conflict resolution.
PetriNet MakeSharedResourceNet(std::uint32_t users, double work_rate,
                               double rest_rate);

}  // namespace wsn::petri
