#include "petri/ctmc_solver.hpp"

#include <deque>
#include <unordered_map>

#include "petri/enabling.hpp"
#include "util/error.hpp"

namespace wsn::petri {

using util::ModelError;
using util::Require;

namespace {

SpnSteadyState StatsFromDistribution(
    const PetriNet& net, const std::vector<Marking>& markings,
    const std::vector<std::size_t>& state_marking,
    const std::vector<double>& pi,
    const std::vector<double>& completion_rate_per_state_transition,
    std::size_t tangible_states) {
  const std::size_t np = net.PlaceCount();
  const std::size_t nt = net.TransitionCount();
  SpnSteadyState out;
  out.mean_tokens.assign(np, 0.0);
  out.prob_nonempty.assign(np, 0.0);
  out.throughput.assign(nt, 0.0);
  out.tangible_states = tangible_states;
  out.expanded_states = pi.size();

  for (std::size_t s = 0; s < pi.size(); ++s) {
    const Marking& m = markings[state_marking[s]];
    for (std::size_t p = 0; p < np; ++p) {
      out.mean_tokens[p] += pi[s] * static_cast<double>(m[p]);
      if (m[p] > 0) out.prob_nonempty[p] += pi[s];
    }
    for (std::size_t t = 0; t < nt; ++t) {
      out.throughput[t] +=
          pi[s] * completion_rate_per_state_transition[s * nt + t];
    }
  }
  return out;
}

}  // namespace

SpnSteadyState SolveExponentialNet(const PetriNet& net,
                                   const SolverOptions& opts) {
  const TangibleGraph graph = BuildTangibleGraph(net, opts.reach);
  const std::size_t n = graph.markings.size();
  Require(n > 0, "no tangible markings");
  const std::size_t nt = net.TransitionCount();

  markov::Ctmc chain(n);
  for (const TangibleEdge& e : graph.edges) {
    if (e.from != e.to) chain.AddRate(e.from, e.to, e.rate);
    // Self-loop rates (firing that returns to the same tangible marking)
    // do not affect the stationary distribution and are dropped.
  }
  const std::vector<double> pi = chain.StationaryDistribution(
      opts.dense_threshold);

  // Completion rates: for exponential transition t enabled in marking s,
  // it completes at its rate.
  std::vector<double> completion(n * nt, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (TransitionId t = 0; t < nt; ++t) {
      const Transition& tr = net.GetTransition(t);
      if (tr.kind != TransitionKind::kTimed) continue;
      if (!IsEnabled(net, t, graph.markings[s])) continue;
      completion[s * nt + t] =
          std::get<util::Exponential>(tr.delay->AsVariant()).rate;
    }
  }

  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) identity[i] = i;
  return StatsFromDistribution(net, graph.markings, identity, pi, completion,
                               n);
}

namespace {

/// Per-transition stage info for the expanded chain.
struct StageInfo {
  bool is_general = false;   ///< deterministic or Erlang
  std::size_t stages = 1;    ///< k
  double phase_rate = 0.0;   ///< nu (rate of each phase)
  double exp_rate = 0.0;     ///< for exponential transitions
};

struct ExpandedState {
  std::size_t marking;             ///< index into interned tangible markings
  std::vector<std::uint32_t> phases;  ///< per general transition

  bool operator==(const ExpandedState& other) const noexcept {
    return marking == other.marking && phases == other.phases;
  }
};

struct ExpandedStateHash {
  std::size_t operator()(const ExpandedState& s) const noexcept {
    std::size_t h = s.marking * 1099511628211ULL + 1469598103934665603ULL;
    for (std::uint32_t v : s.phases) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

class StageExpansionSolver {
 public:
  StageExpansionSolver(const PetriNet& net, const SolverOptions& opts)
      : net_(net), opts_(opts), resolver_options_(opts.reach) {
    Require(opts.det_stages >= 1,
            "det_stages must be >= 1 for deterministic nets");
    BuildStageInfo();
  }

  SpnSteadyState Solve() {
    Explore();
    const std::size_t n = states_.size();
    markov::Ctmc chain(n);
    for (const auto& [from, to, rate] : edges_) {
      if (from != to) chain.AddRate(from, to, rate);
    }
    const std::vector<double> pi =
        chain.StationaryDistribution(opts_.dense_threshold);

    const std::size_t nt = net_.TransitionCount();
    std::vector<double> completion(n * nt, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      const Marking& m = markings_[states_[s].marking];
      std::size_t g_idx = 0;
      for (TransitionId t = 0; t < nt; ++t) {
        const Transition& tr = net_.GetTransition(t);
        if (tr.kind != TransitionKind::kTimed) continue;
        const StageInfo& info = stage_info_[t];
        if (!IsEnabled(net_, t, m)) {
          if (info.is_general) ++g_idx;
          continue;
        }
        if (info.is_general) {
          if (states_[s].phases[g_idx] + 1 == info.stages) {
            completion[s * nt + t] = info.phase_rate;
          }
          ++g_idx;
        } else {
          completion[s * nt + t] = info.exp_rate;
        }
      }
    }

    std::vector<std::size_t> state_marking(n);
    for (std::size_t s = 0; s < n; ++s) state_marking[s] = states_[s].marking;
    return StatsFromDistribution(net_, markings_, state_marking, pi,
                                 completion, markings_.size());
  }

 private:
  void BuildStageInfo() {
    stage_info_.resize(net_.TransitionCount());
    for (TransitionId t = 0; t < net_.TransitionCount(); ++t) {
      const Transition& tr = net_.GetTransition(t);
      if (tr.kind != TransitionKind::kTimed) continue;
      StageInfo& info = stage_info_[t];
      const auto& v = tr.delay->AsVariant();
      if (const auto* e = std::get_if<util::Exponential>(&v)) {
        info.exp_rate = e->rate;
      } else if (const auto* d = std::get_if<util::Deterministic>(&v)) {
        Require(d->value > 0.0,
                "deterministic delay must be > 0 for stage expansion "
                "(zero-delay transitions should be immediate)");
        info.is_general = true;
        info.stages = opts_.det_stages;
        info.phase_rate = static_cast<double>(opts_.det_stages) / d->value;
        general_transitions_.push_back(t);
      } else if (const auto* er = std::get_if<util::Erlang>(&v)) {
        info.is_general = true;
        info.stages = static_cast<std::size_t>(er->k);
        info.phase_rate = er->rate;
        general_transitions_.push_back(t);
      } else {
        throw ModelError(
            "numerical solver supports exponential, deterministic and "
            "Erlang delays only; transition '" + tr.name + "' has " +
            tr.delay->Describe());
      }
    }
  }

  std::size_t InternMarking(const Marking& m) {
    auto [it, inserted] = marking_index_.emplace(m, markings_.size());
    if (inserted) markings_.push_back(m);
    return it->second;
  }

  std::size_t InternState(ExpandedState s, std::deque<std::size_t>& frontier) {
    auto [it, inserted] = state_index_.emplace(s, states_.size());
    if (inserted) {
      if (states_.size() >= opts_.reach.max_markings) {
        throw ModelError("stage expansion exceeds state cap");
      }
      states_.push_back(std::move(s));
      frontier.push_back(it->second);
    }
    return it->second;
  }

  /// Phase vector after moving from tangible marking `from_m` to `to_m`:
  /// transitions that stay enabled keep phases; everything else resets.
  std::vector<std::uint32_t> SuccessorPhases(
      const std::vector<std::uint32_t>& phases, const Marking& to_m,
      std::size_t fired_general /* index into general list or npos */) const {
    std::vector<std::uint32_t> out(phases.size(), 0);
    for (std::size_t g = 0; g < general_transitions_.size(); ++g) {
      if (g == fired_general) continue;  // fired: phase resets
      if (IsEnabled(net_, general_transitions_[g], to_m)) {
        out[g] = phases[g];
      }
    }
    return out;
  }

  void Explore() {
    const auto init_dist =
        ResolveVanishingDistribution(net_, net_.InitialMarking(),
                                     resolver_options_);
    std::deque<std::size_t> frontier;
    for (const auto& [m, p] : init_dist) {
      (void)p;
      ExpandedState s{InternMarking(m),
                      std::vector<std::uint32_t>(
                          general_transitions_.size(), 0)};
      InternState(std::move(s), frontier);
    }

    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      const ExpandedState state = states_[cur];  // copy (vector reallocs)
      const Marking m = markings_[state.marking];

      std::size_t g_idx = 0;
      for (TransitionId t = 0; t < net_.TransitionCount(); ++t) {
        const Transition& tr = net_.GetTransition(t);
        if (tr.kind != TransitionKind::kTimed) continue;
        const StageInfo& info = stage_info_[t];
        const bool enabled = IsEnabled(net_, t, m);
        if (!enabled) {
          if (info.is_general) ++g_idx;
          continue;
        }

        if (!info.is_general) {
          // Exponential firing.
          EmitFiring(cur, state, m, t, info.exp_rate, kNone, frontier);
        } else {
          const std::uint32_t phase = state.phases[g_idx];
          if (phase + 1 < info.stages) {
            // Phase advance.
            ExpandedState next = state;
            ++next.phases[g_idx];
            const std::size_t to = InternState(std::move(next), frontier);
            edges_.emplace_back(cur, to, info.phase_rate);
          } else {
            // Last phase completes: the transition fires.
            EmitFiring(cur, state, m, t, info.phase_rate, g_idx, frontier);
          }
          ++g_idx;
        }
      }
    }
  }

  bool ExceedsTruncation(const Marking& m) const {
    if (opts_.truncate_tokens == 0) return false;
    for (std::uint32_t v : m) {
      if (v > opts_.truncate_tokens) return true;
    }
    return false;
  }

  void EmitFiring(std::size_t cur, const ExpandedState& state,
                  const Marking& m, TransitionId t, double rate,
                  std::size_t fired_general,
                  std::deque<std::size_t>& frontier) {
    Marking fired = Fire(net_, t, m);
    const auto dist =
        ResolveVanishingDistribution(net_, fired, resolver_options_);
    for (const auto& [tm, tp] : dist) {
      if (ExceedsTruncation(tm)) continue;  // blocked (loss truncation)
      ExpandedState next{InternMarking(tm),
                         SuccessorPhases(state.phases, tm, fired_general)};
      const std::size_t to = InternState(std::move(next), frontier);
      edges_.emplace_back(cur, to, rate * tp);
    }
  }

  const PetriNet& net_;
  const SolverOptions& opts_;
  ReachabilityOptions resolver_options_;

  std::vector<StageInfo> stage_info_;
  std::vector<TransitionId> general_transitions_;

  std::vector<Marking> markings_;
  std::unordered_map<Marking, std::size_t, MarkingHash> marking_index_;
  std::vector<ExpandedState> states_;
  std::unordered_map<ExpandedState, std::size_t, ExpandedStateHash>
      state_index_;
  std::vector<std::tuple<std::size_t, std::size_t, double>> edges_;
};

}  // namespace

SpnSteadyState SolveSteadyState(const PetriNet& net,
                                const SolverOptions& opts) {
  net.Validate();
  if (net.AllTimedExponential()) {
    return SolveExponentialNet(net, opts);
  }
  StageExpansionSolver solver(net, opts);
  return solver.Solve();
}

}  // namespace wsn::petri
