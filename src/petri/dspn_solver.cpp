#include "petri/dspn_solver.hpp"

#include <cmath>
#include <deque>
#include <unordered_map>

#include "linalg/iterative.hpp"
#include "linalg/sparse.hpp"
#include "petri/enabling.hpp"
#include "util/error.hpp"

namespace wsn::petri {

using util::ModelError;
using util::Require;

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Poisson(a) pmf values 0..K where K is chosen so the truncated mass is
/// below eps.  Computed in log space for stability at large a.
std::vector<double> PoissonWeights(double a, double eps) {
  std::vector<double> w;
  if (a <= 0.0) {
    w.push_back(1.0);
    return w;
  }
  const std::size_t k_cap =
      static_cast<std::size_t>(a + 12.0 * std::sqrt(a) + 60.0);
  double log_w = -a;
  double cumulative = 0.0;
  for (std::size_t k = 0; k <= k_cap; ++k) {
    const double v = std::exp(log_w);
    w.push_back(v);
    cumulative += v;
    if (cumulative >= 1.0 - eps && k >= static_cast<std::size_t>(a)) break;
    log_w += std::log(a) - std::log(static_cast<double>(k + 1));
  }
  return w;
}

struct TransitionInfo {
  bool is_det = false;
  double rate = 0.0;   ///< exponential rate
  double delay = 0.0;  ///< deterministic delay
};

class DspnSolver {
 public:
  DspnSolver(const PetriNet& net, const DspnOptions& opts)
      : net_(net), opts_(opts) {
    net_.Validate();
    ClassifyTransitions();
  }

  SpnSteadyState Solve() {
    ExploreTangibleSpace();
    BuildEmbeddedChain();
    return Combine();
  }

 private:
  void ClassifyTransitions() {
    info_.resize(net_.TransitionCount());
    for (TransitionId t = 0; t < net_.TransitionCount(); ++t) {
      const Transition& tr = net_.GetTransition(t);
      if (tr.kind != TransitionKind::kTimed) continue;
      const auto& v = tr.delay->AsVariant();
      if (const auto* e = std::get_if<util::Exponential>(&v)) {
        info_[t].rate = e->rate;
      } else if (const auto* d = std::get_if<util::Deterministic>(&v)) {
        Require(d->value > 0.0,
                "DSPN solver: deterministic delay must be > 0 "
                "(zero-delay transitions should be immediate)");
        info_[t].is_det = true;
        info_[t].delay = d->value;
      } else {
        throw ModelError(
            "DSPN solver supports exponential and deterministic delays "
            "only; transition '" + tr.name + "' has " +
            tr.delay->Describe());
      }
    }
  }

  bool ExceedsTruncation(const Marking& m) const {
    if (opts_.truncate_tokens == 0) return false;
    for (std::uint32_t v : m) {
      if (v > opts_.truncate_tokens) return true;
    }
    return false;
  }

  std::size_t Intern(const Marking& m, std::deque<std::size_t>& frontier) {
    auto [it, inserted] = index_.emplace(m, markings_.size());
    if (inserted) {
      if (markings_.size() >= opts_.reach.max_markings) {
        throw ModelError("DSPN tangible space exceeds marking cap");
      }
      markings_.push_back(m);
      frontier.push_back(it->second);
    }
    return it->second;
  }

  /// Distribution over *interned, truncation-respecting* tangible states
  /// after firing `t` in `m`; dropped (truncated) mass is returned so
  /// callers can convert it into self-loop probability.
  std::vector<std::pair<std::size_t, double>> FireToStates(
      TransitionId t, const Marking& m, double* dropped,
      std::deque<std::size_t>& frontier) {
    std::vector<std::pair<std::size_t, double>> out;
    *dropped = 0.0;
    const Marking fired = Fire(net_, t, m);
    const auto dist = ResolveVanishingDistribution(net_, fired, opts_.reach);
    for (const auto& [tm, tp] : dist) {
      if (ExceedsTruncation(tm)) {
        *dropped += tp;
        continue;
      }
      out.emplace_back(Intern(tm, frontier), tp);
    }
    return out;
  }

  void ExploreTangibleSpace() {
    std::deque<std::size_t> frontier;
    const auto init =
        ResolveVanishingDistribution(net_, net_.InitialMarking(), opts_.reach);
    for (const auto& [m, p] : init) {
      (void)p;
      Require(!ExceedsTruncation(m), "initial marking exceeds truncation");
      Intern(m, frontier);
    }
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop_front();
      const Marking m = markings_[cur];  // copy: vector may grow
      for (TransitionId t = 0; t < net_.TransitionCount(); ++t) {
        if (net_.GetTransition(t).kind != TransitionKind::kTimed) continue;
        if (!IsEnabled(net_, t, m)) continue;
        double dropped = 0.0;
        (void)FireToStates(t, m, &dropped, frontier);
      }
    }

    // Classify states and check the DSPN solvability condition.
    det_of_state_.assign(markings_.size(), kNone);
    for (std::size_t s = 0; s < markings_.size(); ++s) {
      std::size_t det_count = 0;
      bool any_timed = false;
      for (TransitionId t = 0; t < net_.TransitionCount(); ++t) {
        if (net_.GetTransition(t).kind != TransitionKind::kTimed) continue;
        if (!IsEnabled(net_, t, markings_[s])) continue;
        any_timed = true;
        if (info_[t].is_det) {
          det_of_state_[s] = t;
          ++det_count;
        }
      }
      if (det_count > 1) {
        throw ModelError(
            "DSPN solvability violated: more than one deterministic "
            "transition enabled in a reachable tangible marking");
      }
      if (!any_timed) {
        throw ModelError(
            "DSPN solver: reachable dead tangible marking (the embedded "
            "chain would absorb); steady state is degenerate");
      }
    }
  }

  /// Subordinated-CTMC transient analysis for a deterministic window.
  struct SubordinatedResult {
    std::vector<std::size_t> live;        ///< global state ids
    std::vector<double> at_tau;           ///< distribution over `live` at tau
    std::vector<double> sojourn;          ///< expected time per live state
    std::vector<std::pair<std::size_t, double>> exits;  ///< absorbed mass
    double self_loop = 0.0;  ///< truncated mass folded back to the source
  };

  SubordinatedResult AnalyzeDeterministicWindow(std::size_t source,
                                                TransitionId det) {
    const double tau = info_[det].delay;
    SubordinatedResult result;

    // BFS over live states (deterministic transition stays enabled).
    std::unordered_map<std::size_t, std::size_t> live_index;
    auto live_id = [&](std::size_t global) {
      auto [it, inserted] = live_index.emplace(global, result.live.size());
      if (inserted) result.live.push_back(global);
      return it->second;
    };

    struct Edge {
      std::size_t from;  // live index
      std::size_t to;    // live index, or kNone for exit
      std::size_t exit_global = kNone;
      double rate;
    };
    std::vector<Edge> edges;

    std::deque<std::size_t> grow;  // Intern frontier; stays empty (the
                                   // tangible space is already closed)
    std::deque<std::size_t> work;
    live_id(source);
    work.push_back(source);
    std::unordered_map<std::size_t, bool> visited;
    visited[source] = true;
    while (!work.empty()) {
      const std::size_t g = work.front();
      work.pop_front();
      const std::size_t li = live_id(g);
      const Marking m = markings_[g];
      for (TransitionId t = 0; t < net_.TransitionCount(); ++t) {
        if (net_.GetTransition(t).kind != TransitionKind::kTimed) continue;
        if (info_[t].is_det || !IsEnabled(net_, t, m)) continue;
        double dropped = 0.0;
        const auto targets = FireToStates(t, m, &dropped, grow);
        // Truncation-dropped mass = blocked firing: treat as the firing
        // not happening (rate reduced); approximate by scaling the edge.
        for (const auto& [gz, p] : targets) {
          Edge e;
          e.from = li;
          e.rate = info_[t].rate * p;
          if (det_of_state_[gz] == det) {
            e.to = live_id(gz);
            if (!visited[gz]) {
              visited[gz] = true;
              work.push_back(gz);
            }
          } else {
            e.to = kNone;
            e.exit_global = gz;
          }
          edges.push_back(e);
        }
      }
    }

    const std::size_t n_live = result.live.size();
    // Collect exits with stable indices.
    std::unordered_map<std::size_t, std::size_t> exit_index;
    std::vector<std::size_t> exit_globals;
    for (const Edge& e : edges) {
      if (e.to == kNone) {
        auto [it, inserted] =
            exit_index.emplace(e.exit_global, exit_globals.size());
        if (inserted) exit_globals.push_back(e.exit_global);
        (void)it;
      }
    }
    const std::size_t n_exit = exit_globals.size();
    const std::size_t n_total = n_live + n_exit;

    // Uniformization rate: max exit rate among live states.
    std::vector<double> exit_rate(n_live, 0.0);
    for (const Edge& e : edges) exit_rate[e.from] += e.rate;
    double big_lambda = 0.0;
    for (double r : exit_rate) big_lambda = std::max(big_lambda, r);

    result.at_tau.assign(n_live, 0.0);
    result.sojourn.assign(n_live, 0.0);

    if (big_lambda <= 0.0) {
      // No competing exponential activity: the window passes undisturbed.
      result.at_tau[0] = 1.0;
      result.sojourn[0] = tau;
      return result;
    }

    // Stochastic matrix of the uniformized chain over live+exit states.
    linalg::CooBuilder coo(n_total, n_total);
    for (std::size_t x = 0; x < n_live; ++x) {
      coo.Add(x, x, 1.0 - exit_rate[x] / big_lambda);
    }
    for (const Edge& e : edges) {
      const std::size_t to = (e.to == kNone)
                                 ? n_live + exit_index[e.exit_global]
                                 : e.to;
      coo.Add(e.from, to, e.rate / big_lambda);
    }
    for (std::size_t x = n_live; x < n_total; ++x) {
      coo.Add(x, x, 1.0);  // exits absorb
    }
    const linalg::CsrMatrix p(coo);

    const double a = big_lambda * tau;
    const std::vector<double> pois =
        PoissonWeights(a, opts_.uniformization_epsilon);

    std::vector<double> v(n_total, 0.0);
    v[0] = 1.0;  // live_id(source) == 0 by construction
    std::vector<double> final_dist(n_total, 0.0);
    double cum = 0.0;
    for (std::size_t k = 0; k < pois.size(); ++k) {
      const double w = pois[k];
      for (std::size_t i = 0; i < n_total; ++i) final_dist[i] += w * v[i];
      cum += w;
      // Accumulated sojourn weight for step k: (1 - CumPois_k)/Lambda.
      const double sw = (1.0 - cum) / big_lambda;
      if (sw > 0.0) {
        for (std::size_t x = 0; x < n_live; ++x) {
          result.sojourn[x] += sw * v[x];
        }
      }
      if (k + 1 < pois.size()) {
        v = p.ApplyTransposed(v);
      }
    }
    // Fold the (tiny) truncated tail of the series into the last vector.
    const double tail = std::max(0.0, 1.0 - cum);
    for (std::size_t i = 0; i < n_total; ++i) final_dist[i] += tail * v[i];

    for (std::size_t x = 0; x < n_live; ++x) {
      result.at_tau[x] = final_dist[x];
    }
    for (std::size_t e = 0; e < n_exit; ++e) {
      if (final_dist[n_live + e] > 0.0) {
        result.exits.emplace_back(exit_globals[e], final_dist[n_live + e]);
      }
    }
    return result;
  }

  void BuildEmbeddedChain() {
    const std::size_t n = markings_.size();
    const std::size_t nt = net_.TransitionCount();
    emc_rows_.assign(n, {});
    sojourn_.assign(n, {});
    duration_.assign(n, 0.0);
    firings_.assign(n * nt, 0.0);
    std::deque<std::size_t> grow;  // space is closed; Intern won't grow it

    for (std::size_t s = 0; s < n; ++s) {
      const Marking m = markings_[s];
      const TransitionId det = det_of_state_[s];
      if (det == kNone) {
        // Plain CTMC step.
        double total = 0.0;
        for (TransitionId t = 0; t < nt; ++t) {
          if (net_.GetTransition(t).kind != TransitionKind::kTimed) continue;
          if (!IsEnabled(net_, t, m)) continue;
          total += info_[t].rate;
        }
        duration_[s] = 1.0 / total;
        sojourn_[s].emplace_back(s, 1.0 / total);
        double self_mass = 0.0;
        for (TransitionId t = 0; t < nt; ++t) {
          if (net_.GetTransition(t).kind != TransitionKind::kTimed) continue;
          if (!IsEnabled(net_, t, m)) continue;
          const double p_fire = info_[t].rate / total;
          firings_[s * nt + t] += p_fire;
          double dropped = 0.0;
          for (const auto& [z, pz] : FireToStates(t, m, &dropped, grow)) {
            emc_rows_[s].emplace_back(z, p_fire * pz);
          }
          self_mass += p_fire * dropped;
        }
        if (self_mass > 0.0) emc_rows_[s].emplace_back(s, self_mass);
      } else {
        // Deterministic window.
        const SubordinatedResult sub = AnalyzeDeterministicWindow(s, det);
        double step_time = 0.0;
        for (std::size_t x = 0; x < sub.live.size(); ++x) {
          const double lx = sub.sojourn[x];
          if (lx <= 0.0) continue;
          step_time += lx;
          sojourn_[s].emplace_back(sub.live[x], lx);
          // Expected exponential firings while dwelling in live state x.
          const Marking& mx = markings_[sub.live[x]];
          for (TransitionId t = 0; t < nt; ++t) {
            if (net_.GetTransition(t).kind != TransitionKind::kTimed ||
                info_[t].is_det) {
              continue;
            }
            if (IsEnabled(net_, t, mx)) {
              firings_[s * nt + t] += info_[t].rate * lx;
            }
          }
        }
        duration_[s] = step_time;

        // Survived to tau: the deterministic transition fires.
        double self_mass = 0.0;
        for (std::size_t x = 0; x < sub.live.size(); ++x) {
          const double fx = sub.at_tau[x];
          if (fx <= 0.0) continue;
          firings_[s * nt + det] += fx;
          double dropped = 0.0;
          for (const auto& [z, pz] :
               FireToStates(det, markings_[sub.live[x]], &dropped, grow)) {
            emc_rows_[s].emplace_back(z, fx * pz);
          }
          self_mass += fx * dropped;
        }
        // Pre-empted: the embedded chain resumes at the exit marking.
        for (const auto& [z, pz] : sub.exits) {
          emc_rows_[s].emplace_back(z, pz);
        }
        if (self_mass > 0.0) emc_rows_[s].emplace_back(s, self_mass);
      }
    }
    Require(grow.empty(), "internal: tangible space was not closed");
  }

  SpnSteadyState Combine() {
    const std::size_t n = markings_.size();
    const std::size_t nt = net_.TransitionCount();

    // Stationary vector of the embedded DTMC via pi (P - I) = 0.
    linalg::CooBuilder coo(n, n);
    for (std::size_t s = 0; s < n; ++s) {
      double row_sum = 0.0;
      for (const auto& [z, p] : emc_rows_[s]) {
        coo.Add(s, z, p);
        row_sum += p;
      }
      coo.Add(s, s, -1.0);
      if (std::abs(row_sum - 1.0) > 1e-9) {
        throw ModelError("DSPN embedded chain row does not sum to 1 (" +
                         std::to_string(row_sum) + ")");
      }
    }
    linalg::IterativeOptions iter;
    iter.tolerance = 1e-13;
    const auto emc = linalg::StationaryGaussSeidel(linalg::CsrMatrix(coo),
                                                   iter);
    if (!emc.converged) {
      throw ModelError("DSPN embedded-chain solve did not converge");
    }
    const std::vector<double>& pi = emc.solution;

    // Conversion: time-stationary probability of each tangible marking.
    std::vector<double> time_weight(n, 0.0);
    double total_time = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& [x, w] : sojourn_[s]) {
        time_weight[x] += pi[s] * w;
      }
      total_time += pi[s] * duration_[s];
    }
    Require(total_time > 0.0, "DSPN: zero mean cycle time");

    SpnSteadyState out;
    out.mean_tokens.assign(net_.PlaceCount(), 0.0);
    out.prob_nonempty.assign(net_.PlaceCount(), 0.0);
    out.throughput.assign(nt, 0.0);
    out.tangible_states = n;
    out.expanded_states = n;
    for (std::size_t x = 0; x < n; ++x) {
      const double p = time_weight[x] / total_time;
      for (std::size_t pl = 0; pl < net_.PlaceCount(); ++pl) {
        out.mean_tokens[pl] += p * static_cast<double>(markings_[x][pl]);
        if (markings_[x][pl] > 0) out.prob_nonempty[pl] += p;
      }
    }
    for (TransitionId t = 0; t < nt; ++t) {
      double expected_firings = 0.0;
      for (std::size_t s = 0; s < n; ++s) {
        expected_firings += pi[s] * firings_[s * nt + t];
      }
      out.throughput[t] = expected_firings / total_time;
    }
    return out;
  }

  const PetriNet& net_;
  const DspnOptions& opts_;
  std::vector<TransitionInfo> info_;

  std::vector<Marking> markings_;
  std::unordered_map<Marking, std::size_t, MarkingHash> index_;
  std::vector<std::size_t> det_of_state_;

  std::vector<std::vector<std::pair<std::size_t, double>>> emc_rows_;
  std::vector<std::vector<std::pair<std::size_t, double>>> sojourn_;
  std::vector<double> duration_;
  std::vector<double> firings_;
};

}  // namespace

SpnSteadyState SolveDspnExact(const PetriNet& net, const DspnOptions& opts) {
  DspnSolver solver(net, opts);
  return solver.Solve();
}

}  // namespace wsn::petri
