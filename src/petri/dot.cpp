#include "petri/dot.hpp"

#include <sstream>

namespace wsn::petri {

std::string ToDot(const PetriNet& net, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n";
  for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
    const Place& place = net.GetPlace(p);
    os << "  p" << p << " [shape=circle,label=\"" << place.name;
    if (place.initial_tokens > 0) {
      os << "\\n(" << place.initial_tokens << ")";
    }
    os << "\"];\n";
  }
  for (std::size_t t = 0; t < net.TransitionCount(); ++t) {
    const Transition& tr = net.GetTransition(t);
    if (tr.IsImmediate()) {
      os << "  t" << t << " [shape=box,height=0.1,style=filled,"
         << "fillcolor=black,label=\"\",xlabel=\"" << tr.name << " (pri "
         << tr.priority << ")\"];\n";
    } else {
      os << "  t" << t << " [shape=box,label=\"" << tr.name << "\\n"
         << tr.delay->Describe() << "\"];\n";
    }
    for (const Arc& a : tr.arcs) {
      switch (a.kind) {
        case ArcKind::kInput:
          os << "  p" << a.place << " -> t" << t;
          break;
        case ArcKind::kOutput:
          os << "  t" << t << " -> p" << a.place;
          break;
        case ArcKind::kInhibitor:
          os << "  p" << a.place << " -> t" << t << " [arrowhead=odot]";
          break;
      }
      if (a.kind != ArcKind::kInhibitor && a.multiplicity > 1) {
        os << " [label=\"" << a.multiplicity << "\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace wsn::petri
