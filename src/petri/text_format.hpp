// A small line-oriented text format for EDSPNs (".spn"), so nets can be
// versioned, diffed and shared without C++ — the role TimeNET's XML files
// play for its users.
//
// Grammar (one directive per line, '#' starts a comment):
//
//   place <name> [tokens]
//   transition <name> immediate [priority=<int>] [weight=<float>]
//   transition <name> exp <rate>
//   transition <name> det <delay>
//   transition <name> erlang <k> <rate>
//   transition <name> uniform <low> <high>
//   arc in <transition> <place> [multiplicity]
//   arc out <transition> <place> [multiplicity]
//   arc inhibit <transition> <place> [multiplicity]
//
// Names may not contain whitespace.  Serialize/Parse round-trip exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "petri/net.hpp"

namespace wsn::petri {

/// Render `net` in the .spn format.
std::string SerializeNet(const PetriNet& net);

/// Parse a .spn document.  Throws InvalidArgument with a line number on
/// malformed input; the returned net is Validate()d.
PetriNet ParseNet(const std::string& text);

/// Stream convenience wrappers.
void WriteNet(std::ostream& os, const PetriNet& net);
PetriNet ReadNet(std::istream& is);

}  // namespace wsn::petri
