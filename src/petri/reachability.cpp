#include "petri/reachability.hpp"

#include <deque>
#include <unordered_set>

#include "petri/enabling.hpp"
#include "util/error.hpp"

namespace wsn::petri {

using util::ModelError;
using util::Require;

std::size_t MarkingHash::operator()(const Marking& m) const noexcept {
  // FNV-1a over the token counts.
  std::size_t h = 1469598103934665603ULL;
  for (std::uint32_t v : m) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

void CheckBound(const Marking& m, std::uint32_t max_tokens) {
  for (std::uint32_t v : m) {
    if (v > max_tokens) {
      throw ModelError(
          "reachability: place exceeded " + std::to_string(max_tokens) +
          " tokens; the net appears unbounded (or raise the guard)");
    }
  }
}

}  // namespace

std::vector<std::size_t> ReachabilityGraph::DeadMarkings(
    const PetriNet& net) const {
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < markings.size(); ++i) {
    if (EnabledTransitions(net, markings[i]).empty()) dead.push_back(i);
  }
  return dead;
}

std::uint32_t ReachabilityGraph::MaxTokens() const noexcept {
  std::uint32_t best = 0;
  for (const Marking& m : markings) {
    for (std::uint32_t v : m) best = std::max(best, v);
  }
  return best;
}

ReachabilityGraph ExploreReachability(const PetriNet& net,
                                      const ReachabilityOptions& opts) {
  net.Validate();
  ReachabilityGraph graph;
  std::unordered_map<Marking, std::size_t, MarkingHash> index;

  const Marking m0 = net.InitialMarking();
  CheckBound(m0, opts.max_tokens_per_place);
  index.emplace(m0, 0);
  graph.markings.push_back(m0);

  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    // NOTE: copy the marking — graph.markings may reallocate below.
    const Marking m = graph.markings[cur];
    for (TransitionId t = 0; t < net.TransitionCount(); ++t) {
      if (!IsEnabled(net, t, m)) continue;
      Marking next = Fire(net, t, m);
      CheckBound(next, opts.max_tokens_per_place);
      auto [it, inserted] = index.emplace(next, graph.markings.size());
      if (inserted) {
        if (graph.markings.size() >= opts.max_markings) {
          graph.complete = false;
          throw ModelError(
              "reachability: more than " +
              std::to_string(opts.max_markings) +
              " markings; the state space is too large or unbounded");
        }
        graph.markings.push_back(std::move(next));
        frontier.push_back(it->second);
      }
      graph.edges.push_back({cur, t, it->second});
    }
  }

  graph.tangible.resize(graph.markings.size());
  for (std::size_t i = 0; i < graph.markings.size(); ++i) {
    graph.tangible[i] = IsTangible(net, graph.markings[i]);
  }
  return graph;
}

namespace {

using Distribution = std::unordered_map<Marking, double, MarkingHash>;

/// Depth-first vanishing resolution with memoization and cycle detection.
class VanishingResolver {
 public:
  VanishingResolver(const PetriNet& net, const ReachabilityOptions& opts)
      : net_(net), opts_(opts) {}

  const Distribution& Resolve(const Marking& m) {
    const auto memo_it = memo_.find(m);
    if (memo_it != memo_.end()) return memo_it->second;

    if (on_stack_.count(m) > 0) {
      throw ModelError(
          "vanishing loop: a cycle of immediate transitions never reaches "
          "a tangible marking");
    }
    if (on_stack_.size() > opts_.max_vanishing_depth) {
      throw ModelError("vanishing chain exceeds depth guard");
    }

    Distribution dist;
    const std::vector<TransitionId> conflict =
        EnabledImmediateConflictSet(net_, m);
    if (conflict.empty()) {
      dist.emplace(m, 1.0);
    } else {
      on_stack_.insert(m);
      double total_weight = 0.0;
      for (TransitionId t : conflict) {
        total_weight += net_.GetTransition(t).weight;
      }
      for (TransitionId t : conflict) {
        const double p = net_.GetTransition(t).weight / total_weight;
        Marking next = Fire(net_, t, m);
        CheckBound(next, opts_.max_tokens_per_place);
        const Distribution& sub = Resolve(next);
        for (const auto& [tm, tp] : sub) {
          dist[tm] += p * tp;
        }
      }
      on_stack_.erase(m);
    }
    return memo_.emplace(m, std::move(dist)).first->second;
  }

 private:
  const PetriNet& net_;
  const ReachabilityOptions& opts_;
  std::unordered_map<Marking, Distribution, MarkingHash> memo_;
  std::unordered_set<Marking, MarkingHash> on_stack_;
};

}  // namespace

Distribution ResolveVanishingDistribution(const PetriNet& net,
                                          const Marking& m,
                                          const ReachabilityOptions& opts) {
  VanishingResolver resolver(net, opts);
  return resolver.Resolve(m);
}

TangibleGraph BuildTangibleGraph(const PetriNet& net,
                                 const ReachabilityOptions& opts) {
  net.Validate();
  Require(net.AllTimedExponential(),
          "tangible graph requires all timed transitions exponential; "
          "use the stage-expansion solver for deterministic transitions");

  TangibleGraph graph;
  std::unordered_map<Marking, std::size_t, MarkingHash> index;
  VanishingResolver resolver(net, opts);

  auto intern = [&](const Marking& m, std::deque<std::size_t>& frontier) {
    auto [it, inserted] = index.emplace(m, graph.markings.size());
    if (inserted) {
      if (graph.markings.size() >= opts.max_markings) {
        throw ModelError("tangible reachability exceeds marking cap");
      }
      graph.markings.push_back(m);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  std::deque<std::size_t> frontier;
  const Distribution init = resolver.Resolve(net.InitialMarking());
  std::vector<std::pair<std::size_t, double>> init_entries;
  for (const auto& [m, p] : init) {
    init_entries.emplace_back(intern(m, frontier), p);
  }

  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    const Marking m = graph.markings[cur];  // copy: vector may reallocate
    for (TransitionId t = 0; t < net.TransitionCount(); ++t) {
      const Transition& tr = net.GetTransition(t);
      if (tr.kind != TransitionKind::kTimed || !IsEnabled(net, t, m)) {
        continue;
      }
      const double rate = std::get<util::Exponential>(
                              tr.delay->AsVariant())
                              .rate;
      Marking fired = Fire(net, t, m);
      CheckBound(fired, opts.max_tokens_per_place);
      const Distribution& dist = resolver.Resolve(fired);
      for (const auto& [tm, tp] : dist) {
        const std::size_t to = intern(tm, frontier);
        graph.edges.push_back({cur, t, to, rate * tp});
      }
    }
  }

  graph.initial_distribution.assign(graph.markings.size(), 0.0);
  for (const auto& [idx, p] : init_entries) {
    graph.initial_distribution[idx] += p;
  }
  return graph;
}

}  // namespace wsn::petri
