// Numerical steady-state solution of stochastic Petri nets.
//
// Exponential-only nets (GSPNs) are solved exactly: tangible reachability
// graph -> CTMC generator -> stationary linear solve (the classic
// Marsan/Balbo pipeline, hand-rolled on our linalg substrate).
//
// Nets with deterministic transitions (DSPNs, like the paper's CPU model)
// are additionally solvable by *stage expansion*: each deterministic delay
// d is replaced by an Erlang-k chain (k phases of rate k/d), embedded into
// the state as a per-transition phase counter.  Enabling memory falls out
// naturally: when the transition is disabled its phase resets to zero.
// As k grows the solution converges to the true DSPN steady state; the
// convergence is an explicit ablation (bench_ablation_stages).
#pragma once

#include <cstddef>
#include <vector>

#include "markov/ctmc.hpp"
#include "petri/net.hpp"
#include "petri/reachability.hpp"

namespace wsn::petri {

struct SolverOptions {
  /// Erlang stage count used to expand each deterministic transition.
  /// Ignored for exponential-only nets.  Must be >= 1 when the net has
  /// deterministic transitions.
  std::size_t det_stages = 20;
  /// Switch from dense LU to sparse Gauss–Seidel above this state count.
  std::size_t dense_threshold = 512;
  /// State-space truncation for *open* (unbounded) nets, stage-expansion
  /// path only: firings whose target marking would push any place beyond
  /// this many tokens are dropped (the M/M/1/K-style loss truncation).
  /// 0 disables truncation; unbounded nets then hit the reachability
  /// guard instead of silently growing.
  std::uint32_t truncate_tokens = 0;
  ReachabilityOptions reach;
};

struct SpnSteadyState {
  /// Expected token count per place.
  std::vector<double> mean_tokens;
  /// P(place p is non-empty).
  std::vector<double> prob_nonempty;
  /// Mean completion rate per timed transition (firings per unit time).
  /// Immediate transitions report 0 (their firings happen in zero time;
  /// recover them from flow balance if needed).
  std::vector<double> throughput;
  /// Tangible markings in the underlying graph.
  std::size_t tangible_states = 0;
  /// CTMC states after stage expansion (== tangible_states for GSPNs).
  std::size_t expanded_states = 0;
};

/// Solve the net's steady state.  Throws ModelError for unsupported delay
/// distributions (anything other than exponential, deterministic, Erlang)
/// and for unbounded/oversized state spaces.
SpnSteadyState SolveSteadyState(const PetriNet& net,
                                const SolverOptions& opts = {});

/// Exact solver for exponential-only nets; exposed separately for tests.
SpnSteadyState SolveExponentialNet(const PetriNet& net,
                                   const SolverOptions& opts = {});

}  // namespace wsn::petri
