// Graphviz DOT export of a Petri net (places as circles with token dots,
// immediate transitions as thin bars, timed transitions as boxes labelled
// with their distribution, inhibitor arcs with odot arrowheads).
#pragma once

#include <string>

#include "petri/net.hpp"

namespace wsn::petri {

/// Render the net as a DOT digraph named `graph_name`.
std::string ToDot(const PetriNet& net,
                  const std::string& graph_name = "petri_net");

}  // namespace wsn::petri
