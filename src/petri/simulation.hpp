// Token-game simulation of EDSPNs — the execution engine the paper uses
// (via TimeNET) to evaluate its Fig. 3 CPU net.
//
// Semantics implemented:
//   * vanishing chains: while any immediate transition is enabled, the
//     highest-priority conflict set is resolved by weight and fired in
//     zero time;
//   * timed transitions race; each samples its delay when it (re)becomes
//     enabled at a tangible marking and keeps its timer while it stays
//     enabled across tangible markings (race policy, enabling memory —
//     a transition that gets disabled loses its timer and resamples on
//     re-enabling, which is exactly the paper's "power down after T of
//     continuous idleness" requirement);
//   * the transition that fires always resamples if immediately
//     re-enabled.
//
// Statistics: time-averaged token counts per place and firing counts /
// throughput per transition, collected over [warmup, horizon].
#pragma once

#include <cstdint>
#include <vector>

#include "petri/net.hpp"
#include "util/statistics.hpp"

namespace wsn::petri {

struct SimulationConfig {
  double horizon = 1000.0;      ///< simulated seconds per replication
  double warmup = 0.0;          ///< discard statistics before this time
  std::uint64_t seed = 0x5eedULL;
  /// Guard against zero-time livelock through immediate transitions.
  std::uint64_t max_vanishing_chain = 1u << 20;
  /// Optional hard cap on firings (0 = unlimited) for runaway nets.
  std::uint64_t max_firings = 0;
};

struct SimulationResult {
  /// Time-averaged token count per place over [warmup, horizon].
  std::vector<double> mean_tokens;
  /// Time-averaged squared token count (for variance estimates).
  std::vector<double> mean_tokens_sq;
  /// Firing counts per transition within the observation window.
  std::vector<std::uint64_t> firings;
  /// firings / (horizon - warmup).
  std::vector<double> throughput;
  /// horizon - warmup.
  double observed_time = 0.0;
  /// All firings including warmup (immediate + timed).
  std::uint64_t total_firings = 0;
  /// True when the run ended in a dead marking before the horizon.
  bool deadlocked = false;
  /// Final marking at the horizon.
  Marking final_marking;
};

/// One replication of the token game.
SimulationResult SimulateSpn(const PetriNet& net,
                             const SimulationConfig& config);

/// Replication-ensemble statistics (mean token counts and throughputs
/// aggregated across independent replications).
struct EnsembleResult {
  std::vector<util::RunningStats> mean_tokens;  ///< per place
  std::vector<util::RunningStats> throughput;   ///< per transition
  std::size_t replications = 0;
};

/// Run independent replications (seeds derived from config.seed) in
/// parallel on up to `threads` threads (0 = hardware concurrency).
EnsembleResult SimulateSpnEnsemble(const PetriNet& net,
                                   const SimulationConfig& config,
                                   std::size_t replications,
                                   std::size_t threads = 0);

}  // namespace wsn::petri
