#include "petri/standard_nets.hpp"

#include "util/error.hpp"

namespace wsn::petri {

using util::Require;

PetriNet MakeMm1kNet(double lambda, double mu, std::uint32_t capacity) {
  Require(lambda > 0.0 && mu > 0.0, "rates must be positive");
  Require(capacity >= 1, "capacity must be >= 1");
  PetriNet net;
  const PlaceId queue = net.AddPlace("queue", 0);
  const TransitionId arrive = net.AddExponentialTransition("arrive", lambda);
  const TransitionId serve = net.AddExponentialTransition("serve", mu);
  net.AddOutputArc(arrive, queue);
  net.AddInhibitorArc(arrive, queue, capacity);  // blocks at K jobs
  net.AddInputArc(serve, queue);
  return net;
}

PetriNet MakePingPongNet(double rate_ping_to_pong, double rate_pong_to_ping) {
  PetriNet net;
  const PlaceId ping = net.AddPlace("ping", 1);
  const PlaceId pong = net.AddPlace("pong", 0);
  const TransitionId go = net.AddExponentialTransition("go", rate_ping_to_pong);
  const TransitionId back =
      net.AddExponentialTransition("back", rate_pong_to_ping);
  net.AddInputArc(go, ping);
  net.AddOutputArc(go, pong);
  net.AddInputArc(back, pong);
  net.AddOutputArc(back, ping);
  return net;
}

PetriNet MakeProducerConsumerNet(double produce_rate, double consume_rate,
                                 std::uint32_t buffer) {
  Require(buffer >= 1, "buffer must hold at least one item");
  PetriNet net;
  const PlaceId producing = net.AddPlace("producing", 1);
  const PlaceId produced = net.AddPlace("produced", 0);
  const PlaceId slots = net.AddPlace("slots", buffer);
  const PlaceId items = net.AddPlace("items", 0);
  const PlaceId consuming = net.AddPlace("consuming", 1);

  const TransitionId produce =
      net.AddExponentialTransition("produce", produce_rate);
  net.AddInputArc(produce, producing);
  net.AddOutputArc(produce, produced);

  // Depositing requires a free slot; immediate with top priority.
  const TransitionId deposit = net.AddImmediateTransition("deposit", 1);
  net.AddInputArc(deposit, produced);
  net.AddInputArc(deposit, slots);
  net.AddOutputArc(deposit, items);
  net.AddOutputArc(deposit, producing);

  const TransitionId consume =
      net.AddExponentialTransition("consume", consume_rate);
  net.AddInputArc(consume, items);
  net.AddInputArc(consume, consuming);
  net.AddOutputArc(consume, slots);
  net.AddOutputArc(consume, consuming);
  return net;
}

PetriNet MakeForkJoinNet(std::uint32_t branches, double branch_rate) {
  Require(branches >= 1, "need at least one branch");
  PetriNet net;
  const PlaceId start = net.AddPlace("start", 1);
  const PlaceId done = net.AddPlace("done", 0);
  const TransitionId fork = net.AddImmediateTransition("fork", 1);
  net.AddInputArc(fork, start);
  const TransitionId join = net.AddImmediateTransition("join", 1);
  net.AddOutputArc(join, done);
  for (std::uint32_t b = 0; b < branches; ++b) {
    const PlaceId running =
        net.AddPlace("running_" + std::to_string(b), 0);
    const PlaceId finished =
        net.AddPlace("finished_" + std::to_string(b), 0);
    const TransitionId work = net.AddExponentialTransition(
        "work_" + std::to_string(b), branch_rate);
    net.AddOutputArc(fork, running);
    net.AddInputArc(work, running);
    net.AddOutputArc(work, finished);
    net.AddInputArc(join, finished);
  }
  // Reset: done -> start with an exponential pause so the cycle repeats.
  const TransitionId reset = net.AddExponentialTransition("reset", branch_rate);
  net.AddInputArc(reset, done);
  net.AddOutputArc(reset, start);
  return net;
}

PetriNet MakeSharedResourceNet(std::uint32_t users, double work_rate,
                               double rest_rate) {
  Require(users >= 1, "need at least one user");
  PetriNet net;
  const PlaceId resource = net.AddPlace("resource", 1);
  for (std::uint32_t u = 0; u < users; ++u) {
    const std::string id = std::to_string(u);
    const PlaceId wanting = net.AddPlace("wanting_" + id, 1);
    const PlaceId using_ = net.AddPlace("using_" + id, 0);
    const PlaceId resting = net.AddPlace("resting_" + id, 0);

    // Acquire is immediate; weight grows with user index so conflict
    // resolution is observably biased (tested against the weights).
    const TransitionId acquire = net.AddImmediateTransition(
        "acquire_" + id, /*priority=*/1, /*weight=*/1.0 + u);
    net.AddInputArc(acquire, wanting);
    net.AddInputArc(acquire, resource);
    net.AddOutputArc(acquire, using_);

    const TransitionId release =
        net.AddExponentialTransition("release_" + id, work_rate);
    net.AddInputArc(release, using_);
    net.AddOutputArc(release, resting);
    net.AddOutputArc(release, resource);

    const TransitionId rest =
        net.AddExponentialTransition("rest_" + id, rest_rate);
    net.AddInputArc(rest, resting);
    net.AddOutputArc(rest, wanting);
  }
  return net;
}

}  // namespace wsn::petri
