#include "petri/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "petri/enabling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wsn::petri {

using util::ModelError;
using util::Require;

namespace {

constexpr double kUnscheduled = std::numeric_limits<double>::infinity();

class TokenGame {
 public:
  TokenGame(const PetriNet& net, const SimulationConfig& config)
      : net_(net), config_(config), rng_(config.seed) {
    Require(config.horizon > 0.0, "horizon must be positive");
    Require(config.warmup >= 0.0 && config.warmup < config.horizon,
            "warmup must lie inside the horizon");
    net_.Validate();
  }

  SimulationResult Run() {
    const std::size_t np = net_.PlaceCount();
    const std::size_t nt = net_.TransitionCount();
    SimulationResult result;
    result.mean_tokens.assign(np, 0.0);
    result.mean_tokens_sq.assign(np, 0.0);
    result.firings.assign(nt, 0);
    result.observed_time = config_.horizon - config_.warmup;

    Marking m = net_.InitialMarking();
    double now = 0.0;
    ResolveVanishing(m, now, result);

    // Absolute fire times per timed transition; infinity = not scheduled.
    std::vector<double> fire_at(nt, kUnscheduled);
    RefreshSchedule(m, now, fire_at, /*fired=*/nt);

    for (;;) {
      if (config_.max_firings != 0 &&
          result.total_firings >= config_.max_firings) {
        break;
      }
      // Earliest scheduled timed transition; ties break by lowest id for
      // determinism.
      std::size_t next_t = nt;
      double next_time = kUnscheduled;
      for (std::size_t t = 0; t < nt; ++t) {
        if (fire_at[t] < next_time) {
          next_time = fire_at[t];
          next_t = t;
        }
      }
      if (next_t == nt) {
        // Dead tangible marking: nothing can ever fire again.
        result.deadlocked = true;
        AccumulateTokens(m, now, config_.horizon, result);
        now = config_.horizon;
        break;
      }
      if (next_time > config_.horizon) {
        AccumulateTokens(m, now, config_.horizon, result);
        now = config_.horizon;
        break;
      }

      AccumulateTokens(m, now, next_time, result);
      now = next_time;
      FireInPlace(net_, next_t, m);
      CountFiring(next_t, now, result);
      fire_at[next_t] = kUnscheduled;
      ResolveVanishing(m, now, result);
      RefreshSchedule(m, now, fire_at, next_t);
    }

    const double window = result.observed_time;
    for (std::size_t p = 0; p < np; ++p) {
      result.mean_tokens[p] /= window;
      result.mean_tokens_sq[p] /= window;
    }
    result.throughput.assign(nt, 0.0);
    for (std::size_t t = 0; t < nt; ++t) {
      result.throughput[t] =
          static_cast<double>(result.firings[t]) / window;
    }
    result.final_marking = std::move(m);
    return result;
  }

 private:
  void CountFiring(TransitionId t, double now, SimulationResult& result) {
    ++result.total_firings;
    if (now >= config_.warmup && now <= config_.horizon) {
      ++result.firings[t];
    }
  }

  void AccumulateTokens(const Marking& m, double from, double to,
                        SimulationResult& result) const {
    const double lo = std::max(from, config_.warmup);
    const double hi = std::min(to, config_.horizon);
    if (hi <= lo) return;
    const double dt = hi - lo;
    for (std::size_t p = 0; p < m.size(); ++p) {
      const double tokens = static_cast<double>(m[p]);
      result.mean_tokens[p] += tokens * dt;
      result.mean_tokens_sq[p] += tokens * tokens * dt;
    }
  }

  /// Fire immediate transitions (highest priority first, weighted among
  /// equals) until the marking is tangible.
  void ResolveVanishing(Marking& m, double now, SimulationResult& result) {
    std::uint64_t chain = 0;
    for (;;) {
      const std::vector<TransitionId> conflict =
          EnabledImmediateConflictSet(net_, m);
      if (conflict.empty()) return;
      if (++chain > config_.max_vanishing_chain) {
        throw ModelError(
            "immediate-transition livelock: vanishing chain exceeded " +
            std::to_string(config_.max_vanishing_chain) + " firings");
      }
      const TransitionId t = SampleByWeight(net_, conflict, rng_);
      FireInPlace(net_, t, m);
      CountFiring(t, now, result);
    }
  }

  /// Enabling-memory schedule maintenance at a tangible marking:
  ///   - newly enabled (or just-fired and re-enabled) transitions sample a
  ///     fresh delay;
  ///   - transitions that stay enabled keep their timers;
  ///   - disabled transitions are descheduled.
  void RefreshSchedule(const Marking& m, double now,
                       std::vector<double>& fire_at, std::size_t fired) {
    for (std::size_t t = 0; t < net_.TransitionCount(); ++t) {
      const Transition& tr = net_.GetTransition(t);
      if (tr.kind != TransitionKind::kTimed) continue;
      const bool enabled = IsEnabled(net_, t, m);
      if (!enabled) {
        fire_at[t] = kUnscheduled;  // enabling memory: timer discarded
        continue;
      }
      if (fire_at[t] == kUnscheduled || t == fired) {
        fire_at[t] = now + tr.delay->Sample(rng_);
      }
    }
  }

  const PetriNet& net_;
  const SimulationConfig& config_;
  util::Rng rng_;
};

}  // namespace

SimulationResult SimulateSpn(const PetriNet& net,
                             const SimulationConfig& config) {
  TokenGame game(net, config);
  return game.Run();
}

EnsembleResult SimulateSpnEnsemble(const PetriNet& net,
                                   const SimulationConfig& config,
                                   std::size_t replications,
                                   std::size_t threads) {
  Require(replications >= 1, "need at least one replication");
  std::vector<SimulationResult> results(replications);
  util::Rng base(config.seed);
  std::vector<std::uint64_t> seeds(replications);
  for (auto& s : seeds) s = base();

  util::ParallelFor(
      replications,
      [&](std::size_t r) {
        SimulationConfig local = config;
        local.seed = seeds[r];
        results[r] = SimulateSpn(net, local);
      },
      threads);

  EnsembleResult agg;
  agg.replications = replications;
  agg.mean_tokens.assign(net.PlaceCount(), {});
  agg.throughput.assign(net.TransitionCount(), {});
  for (const SimulationResult& r : results) {
    for (std::size_t p = 0; p < net.PlaceCount(); ++p) {
      agg.mean_tokens[p].Add(r.mean_tokens[p]);
    }
    for (std::size_t t = 0; t < net.TransitionCount(); ++t) {
      agg.throughput[t].Add(r.throughput[t]);
    }
  }
  return agg;
}

}  // namespace wsn::petri
