// Exact steady-state solution of Deterministic and Stochastic Petri Nets
// (DSPNs) by the embedded-Markov-chain method (Ajmone Marsan & Chiola).
//
// Preconditions (checked):
//   * timed transitions are exponential or deterministic;
//   * at most one deterministic transition is enabled in any reachable
//     tangible marking (the classic DSPN solvability condition — the
//     paper's Fig. 3 CPU net satisfies it: PUT needs a PowerUp token,
//     PDT needs a CPU_ON token, and those places are mutually exclusive);
//   * the tangible state space is finite (use `truncate_tokens` for open
//     nets such as the CPU model's unbounded job buffer).
//
// Method.  Tangible markings form the embedded chain's states.  From a
// marking with only exponential transitions enabled, the process behaves
// as a plain CTMC step.  From a marking enabling deterministic d (delay
// tau), the exponential transitions concurrently enabled form a
// *subordinated CTMC* which we analyse transiently over the window
// [0, tau] via uniformization, accumulating
//   * the state distribution at tau  -> where d fires from, and
//   * the expected sojourn time per marking over the window, and
//   * the absorption probabilities into markings that disable d
//     (enabling memory: d's timer is cancelled and the embedded chain
//     resumes there immediately).
// The embedded DTMC's stationary vector, weighted by the expected sojourn
// times (conversion factors), yields exact time-stationary probabilities.
//
// Unlike the Erlang stage expansion in ctmc_solver.hpp this introduces no
// distribution-shape approximation; accuracy is limited only by the
// uniformization tolerance (configurable, default 1e-12).
#pragma once

#include <cstddef>
#include <cstdint>

#include "petri/ctmc_solver.hpp"
#include "petri/net.hpp"
#include "petri/reachability.hpp"

namespace wsn::petri {

struct DspnOptions {
  /// Truncation for open nets, as in SolverOptions (0 = none).
  std::uint32_t truncate_tokens = 0;
  /// Relative truncation error of the uniformization series.
  double uniformization_epsilon = 1e-12;
  ReachabilityOptions reach;
};

/// Exact DSPN steady state; same result shape as the approximate solver.
/// Throws ModelError when the net violates the preconditions above.
SpnSteadyState SolveDspnExact(const PetriNet& net,
                              const DspnOptions& opts = {});

}  // namespace wsn::petri
