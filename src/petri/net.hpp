// Extended Deterministic and Stochastic Petri Net (EDSPN) structure.
//
// Supported net class (the one TimeNET simulates and the paper's Fig. 3
// uses):
//   * places with non-negative integer markings;
//   * immediate transitions with firing priorities and race weights;
//   * timed transitions with arbitrary delay distributions (exponential,
//     deterministic, Erlang, ...) under race policy with enabling memory;
//   * input, output and inhibitor arcs with multiplicities.
//
// A PetriNet is a passive description; execution semantics live in
// simulation.hpp (token game) and ctmc_solver.hpp (numerical solution).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/distributions.hpp"

namespace wsn::petri {

using PlaceId = std::size_t;
using TransitionId = std::size_t;

/// Number of tokens per place, indexed by PlaceId.
using Marking = std::vector<std::uint32_t>;

enum class ArcKind { kInput, kOutput, kInhibitor };

struct Arc {
  ArcKind kind;
  PlaceId place;
  std::uint32_t multiplicity = 1;
};

enum class TransitionKind { kImmediate, kTimed };

struct Place {
  std::string name;
  std::uint32_t initial_tokens = 0;
};

struct Transition {
  std::string name;
  TransitionKind kind = TransitionKind::kTimed;

  // Immediate transitions.
  int priority = 0;      ///< higher fires first among enabled immediates
  double weight = 1.0;   ///< race weight among equal-priority immediates

  // Timed transitions.
  std::optional<util::Distribution> delay;

  std::vector<Arc> arcs;

  bool IsImmediate() const noexcept {
    return kind == TransitionKind::kImmediate;
  }
};

class PetriNet {
 public:
  /// Add a place; returns its id.
  PlaceId AddPlace(std::string name, std::uint32_t initial_tokens = 0);

  /// Add an immediate transition.
  TransitionId AddImmediateTransition(std::string name, int priority = 0,
                                      double weight = 1.0);

  /// Add a timed transition with the given delay distribution.
  TransitionId AddTimedTransition(std::string name, util::Distribution delay);

  /// Shorthand for the common exponential case.
  TransitionId AddExponentialTransition(std::string name, double rate);

  /// Shorthand for the deterministic case (paper's PDT / PUT transitions).
  TransitionId AddDeterministicTransition(std::string name, double delay);

  void AddInputArc(TransitionId t, PlaceId p, std::uint32_t multiplicity = 1);
  void AddOutputArc(TransitionId t, PlaceId p, std::uint32_t multiplicity = 1);
  void AddInhibitorArc(TransitionId t, PlaceId p,
                       std::uint32_t multiplicity = 1);

  std::size_t PlaceCount() const noexcept { return places_.size(); }
  std::size_t TransitionCount() const noexcept { return transitions_.size(); }

  const Place& GetPlace(PlaceId p) const;
  const Transition& GetTransition(TransitionId t) const;

  /// Lookup by name; throws InvalidArgument when absent.
  PlaceId PlaceByName(const std::string& name) const;
  TransitionId TransitionByName(const std::string& name) const;

  Marking InitialMarking() const;

  /// True iff every timed transition is exponential (net is an SPN/GSPN
  /// and solvable exactly as a CTMC).
  bool AllTimedExponential() const noexcept;

  /// True iff the net has at least one deterministic transition (DSPN).
  bool HasDeterministic() const noexcept;

  /// Structural checks: at least one place and one transition, every
  /// transition has at least one arc, no duplicate names.  Throws
  /// ModelError describing the first violation.
  void Validate() const;

  /// C = Post - Pre incidence matrix entries as dense rows
  /// (transitions x places), inhibitors excluded (they do not move tokens).
  std::vector<std::vector<long>> IncidenceMatrix() const;

 private:
  void CheckIds(TransitionId t, PlaceId p) const;

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

}  // namespace wsn::petri
