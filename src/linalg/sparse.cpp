#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace wsn::linalg {

using util::Require;

void CooBuilder::Add(std::size_t r, std::size_t c, double v) {
  Require(r < rows_ && c < cols_, "CooBuilder::Add out of range");
  if (v == 0.0) return;
  rows_idx_.push_back(r);
  cols_idx_.push_back(c);
  values_.push_back(v);
}

CsrMatrix::CsrMatrix(const CooBuilder& coo)
    : rows_(coo.rows_), cols_(coo.cols_) {
  const std::size_t nnz_in = coo.values_.size();
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (coo.rows_idx_[a] != coo.rows_idx_[b])
      return coo.rows_idx_[a] < coo.rows_idx_[b];
    return coo.cols_idx_[a] < coo.cols_idx_[b];
  });

  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(nnz_in);
  values_.reserve(nnz_in);
  std::size_t last_r = rows_;  // sentinel: no previous entry
  std::size_t last_c = 0;
  for (std::size_t k = 0; k < nnz_in; ++k) {
    const std::size_t i = order[k];
    const std::size_t r = coo.rows_idx_[i];
    const std::size_t c = coo.cols_idx_[i];
    const double v = coo.values_[i];
    if (r == last_r && c == last_c) {
      values_.back() += v;  // duplicate (r, c): accumulate
    } else {
      col_idx_.push_back(c);
      values_.push_back(v);
      row_ptr_[r + 1] = values_.size();
      last_r = r;
      last_c = c;
    }
  }
  // row_ptr_[r+1] holds the cumulative nnz through row r for rows with
  // entries; fill gaps (rows without entries inherit the previous value).
  // Rows with duplicates merged need the count refreshed too.
  for (std::size_t r = 1; r <= rows_; ++r) {
    row_ptr_[r] = std::max(row_ptr_[r], row_ptr_[r - 1]);
  }
  row_ptr_[rows_] = values_.size();
  for (std::size_t r = rows_; r-- > 0;) {
    if (row_ptr_[r] > row_ptr_[r + 1]) row_ptr_[r] = row_ptr_[r + 1];
  }
}

CsrMatrix::CsrMatrix(const Matrix& dense, double zero_tol)
    : rows_(dense.Rows()), cols_(dense.Cols()) {
  row_ptr_.assign(rows_ + 1, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = dense(r, c);
      if (std::abs(v) > zero_tol) {
        col_idx_.push_back(c);
        values_.push_back(v);
      }
    }
    row_ptr_[r + 1] = values_.size();
  }
}

std::vector<double> CsrMatrix::Apply(const std::vector<double>& x) const {
  Require(x.size() == cols_, "CsrMatrix::Apply dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

void CsrMatrix::ApplyInto(const std::vector<double>& x,
                          std::vector<double>& y) const {
  Require(x.size() == cols_, "CsrMatrix::ApplyInto dimension mismatch");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
}

std::vector<double> CsrMatrix::ApplyTransposed(
    const std::vector<double>& x) const {
  Require(x.size() == rows_, "CsrMatrix::ApplyTransposed dimension mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += xr * values_[k];
    }
  }
  return y;
}

double CsrMatrix::At(std::size_t r, std::size_t c) const {
  Require(r < rows_ && c < cols_, "CsrMatrix::At out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) += values_[k];
    }
  }
  return out;
}

std::pair<const std::size_t*, const double*> CsrMatrix::Row(
    std::size_t r, std::size_t* count) const {
  Require(r < rows_, "CsrMatrix::Row out of range");
  *count = row_ptr_[r + 1] - row_ptr_[r];
  return {col_idx_.data() + row_ptr_[r], values_.data() + row_ptr_[r]};
}

}  // namespace wsn::linalg
