// Dense row-major matrix.  Sized for the CTMC generator matrices this
// project solves (up to a few thousand states dense; larger chains go
// through the sparse path in sparse.hpp / iterative.hpp).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace wsn::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(std::size_t n);

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  const std::vector<double>& Data() const noexcept { return data_; }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s) noexcept;

  /// y = A x.
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// y = A^T x (i.e. x as a row vector times A).
  std::vector<double> ApplyTransposed(const std::vector<double>& x) const;

  /// Max-abs entry (infinity norm of the flattened matrix).
  double MaxAbs() const noexcept;

  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
double Norm2(const std::vector<double>& v) noexcept;

/// Infinity norm.
double NormInf(const std::vector<double>& v) noexcept;

/// Dot product (sizes must match).
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// a - b.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Scale in place so entries sum to 1 (probability normalization).
/// Throws NumericalError if the sum is not positive.
void NormalizeProbability(std::vector<double>& v);

}  // namespace wsn::linalg
