#include "linalg/lu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsn::linalg {

using util::NumericalError;
using util::Require;

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  Require(lu_.Rows() == lu_.Cols(), "LU requires a square matrix");
  const std::size_t n = lu_.Rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-300) {
      throw NumericalError("LU: matrix is singular to machine precision");
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu_(k, j), lu_(pivot, j));
      }
      std::swap(perm_[k], perm_[pivot]);
      swap_parity_ = -swap_parity_;
    }
    const double pivot_value = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / pivot_value;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
}

std::vector<double> LuDecomposition::Solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.Rows();
  Require(b.size() == n, "LU solve dimension mismatch");
  std::vector<double> x(n);
  // Forward substitution on permuted b (L has implicit unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

double LuDecomposition::Determinant() const noexcept {
  double det = static_cast<double>(swap_parity_);
  for (std::size_t i = 0; i < lu_.Rows(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> SolveDense(const Matrix& a, const std::vector<double>& b) {
  return LuDecomposition(a).Solve(b);
}

std::vector<double> StationaryFromGenerator(const Matrix& q) {
  Require(q.Rows() == q.Cols(), "generator must be square");
  const std::size_t n = q.Rows();
  Require(n > 0, "generator must be non-empty");
  // Solve x A = b with A = Q where the last column is replaced by the
  // normalization constraint.  Work with the transpose: A^T y = e_n.
  Matrix at(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // A(i, j) = Q(i, j) for j < n-1; A(i, n-1) = 1.
      at(j, i) = (j + 1 == n) ? 1.0 : q(i, j);
    }
  }
  std::vector<double> rhs(n, 0.0);
  rhs[n - 1] = 1.0;
  std::vector<double> pi = LuDecomposition(std::move(at)).Solve(rhs);
  // Numerical cleanup: clamp tiny negatives, renormalize.
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-9) p = 0.0;
  }
  NormalizeProbability(pi);
  return pi;
}

std::vector<double> StationaryFromStochastic(const Matrix& p) {
  Require(p.Rows() == p.Cols(), "transition matrix must be square");
  Matrix q = p;
  for (std::size_t i = 0; i < q.Rows(); ++i) q(i, i) -= 1.0;
  return StationaryFromGenerator(q);
}

}  // namespace wsn::linalg
