#include "linalg/iterative.hpp"

#include <cmath>

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace wsn::linalg {

using util::Require;

namespace {

/// Explicit transpose (CSR of Q^T) so Gauss–Seidel gets row access to Q^T.
CsrMatrix TransposeCsr(const CsrMatrix& a) {
  CooBuilder coo(a.Cols(), a.Rows());
  for (std::size_t r = 0; r < a.Rows(); ++r) {
    std::size_t count = 0;
    auto [cols, vals] = a.Row(r, &count);
    for (std::size_t k = 0; k < count; ++k) {
      coo.Add(cols[k], r, vals[k]);
    }
  }
  return CsrMatrix(coo);
}

double MaxDiagonalMagnitude(const CsrMatrix& q) {
  double m = 0.0;
  for (std::size_t r = 0; r < q.Rows(); ++r) {
    m = std::max(m, std::abs(q.At(r, r)));
  }
  return m;
}

}  // namespace

IterativeResult StationaryPowerMethod(const CsrMatrix& q,
                                      const IterativeOptions& opts) {
  Require(q.Rows() == q.Cols() && q.Rows() > 0, "generator must be square");
  const std::size_t n = q.Rows();
  const double lambda = MaxDiagonalMagnitude(q) * 1.05 + 1e-12;

  IterativeResult result;
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    // next = pi P = pi (I + Q/lambda) = pi + (Q^T pi) / lambda.
    std::vector<double> qt_pi = q.ApplyTransposed(pi);
    double change = 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double next = pi[i] + qt_pi[i] / lambda;
      change = std::max(change, std::abs(next - pi[i]));
      pi[i] = next;
      sum += next;
    }
    for (double& p : pi) p /= sum;
    result.iterations = it + 1;
    result.residual = change;
    if (change < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  for (double& p : pi) {
    if (p < 0.0) p = 0.0;
  }
  NormalizeProbability(pi);
  result.solution = std::move(pi);
  return result;
}

IterativeResult StationaryGaussSeidel(const CsrMatrix& q,
                                      const IterativeOptions& opts) {
  Require(q.Rows() == q.Cols() && q.Rows() > 0, "generator must be square");
  const std::size_t n = q.Rows();
  const CsrMatrix qt = TransposeCsr(q);
  const double omega = opts.relaxation;
  Require(omega > 0.0 && omega < 2.0, "SOR relaxation must be in (0,2)");

  IterativeResult result;
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    double change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Row i of Q^T: sum_j Q(j,i) pi_j = 0  =>
      // pi_i = -(sum_{j != i} Q(j,i) pi_j) / Q(i,i).
      std::size_t count = 0;
      auto [cols, vals] = qt.Row(i, &count);
      double off = 0.0;
      double diag = 0.0;
      for (std::size_t k = 0; k < count; ++k) {
        if (cols[k] == i) {
          diag = vals[k];
        } else {
          off += vals[k] * pi[cols[k]];
        }
      }
      if (diag == 0.0) continue;  // absorbing-ish state; leave as-is
      const double updated = -off / diag;
      const double next = (1.0 - omega) * pi[i] + omega * updated;
      change = std::max(change, std::abs(next - pi[i]));
      pi[i] = next;
    }
    double sum = 0.0;
    for (double p : pi) sum += p;
    if (sum > 0.0) {
      for (double& p : pi) p /= sum;
    }
    result.iterations = it + 1;
    result.residual = change;
    if (change < opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  for (double& p : pi) {
    if (p < 0.0) p = 0.0;
  }
  NormalizeProbability(pi);
  result.solution = std::move(pi);
  return result;
}

}  // namespace wsn::linalg
