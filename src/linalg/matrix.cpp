#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace wsn::linalg {

using util::InvalidArgument;
using util::NumericalError;
using util::Require;

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    Require(row.size() == cols_, "ragged initializer list for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::At(std::size_t r, std::size_t c) {
  Require(r < rows_ && c < cols_, "Matrix::At out of range");
  return (*this)(r, c);
}

double Matrix::At(std::size_t r, std::size_t c) const {
  Require(r < rows_ && c < cols_, "Matrix::At out of range");
  return (*this)(r, c);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  Require(cols_ == rhs.rows_, "Matrix product dimension mismatch");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
          "Matrix sum dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Require(rows_ == rhs.rows_ && cols_ == rhs.cols_,
          "Matrix difference dimension mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  Require(x.size() == cols_, "Matrix::Apply dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::ApplyTransposed(const std::vector<double>& x) const {
  Require(x.size() == rows_, "Matrix::ApplyTransposed dimension mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

double Matrix::MaxAbs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << "]\n";
  }
  return os.str();
}

double Norm2(const std::vector<double>& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double NormInf(const std::vector<double>& v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  Require(a.size() == b.size(), "Dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  Require(a.size() == b.size(), "Subtract dimension mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void NormalizeProbability(std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    throw NumericalError("cannot normalize: vector sum is not positive");
  }
  for (double& x : v) x /= sum;
}

}  // namespace wsn::linalg
