// Compressed sparse row matrix with a coordinate-format builder.
// CTMC generators from Petri-net reachability graphs are very sparse
// (out-degree bounded by the number of transitions), so steady-state
// solves on nets with >~2000 tangible markings go through this path.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace wsn::linalg {

/// Coordinate-format triplet accumulator.  Duplicate (row, col) entries
/// are summed when converting to CSR.
class CooBuilder {
 public:
  CooBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  void Add(std::size_t r, std::size_t c, double v);

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }
  std::size_t EntryCount() const noexcept { return rows_idx_.size(); }

  friend class CsrMatrix;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> rows_idx_;
  std::vector<std::size_t> cols_idx_;
  std::vector<double> values_;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compress a COO builder (duplicates summed, zeros kept out).
  explicit CsrMatrix(const CooBuilder& coo);

  /// Densify a dense matrix (for tests).
  explicit CsrMatrix(const Matrix& dense, double zero_tol = 0.0);

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }
  std::size_t NonZeros() const noexcept { return values_.size(); }

  /// y = A x.
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// y = A x into a caller-provided buffer (resized to Rows()) — the
  /// allocation-free form iterative hot loops (e.g. the incremental
  /// uniformization solver) call once per series term.
  void ApplyInto(const std::vector<double>& x, std::vector<double>& y) const;

  /// y = A^T x.
  std::vector<double> ApplyTransposed(const std::vector<double>& x) const;

  /// Entry lookup (O(log nnz_row)); zero when absent.
  double At(std::size_t r, std::size_t c) const;

  Matrix ToDense() const;

  /// Row r's column indices / values (parallel spans).
  std::pair<const std::size_t*, const double*> Row(std::size_t r,
                                                   std::size_t* count) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace wsn::linalg
