// Dense LU factorization with partial pivoting, plus helpers built on it:
// linear solve, determinant, and the rank-1-constraint solve used for CTMC
// stationary distributions (pi Q = 0, sum pi = 1).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace wsn::linalg {

/// PA = LU factorization (Doolittle, partial pivoting).
class LuDecomposition {
 public:
  /// Factors `a`; throws NumericalError if the matrix is singular to
  /// machine precision.
  explicit LuDecomposition(Matrix a);

  /// Solve A x = b.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// det(A); sign accounts for row swaps.
  double Determinant() const noexcept;

  std::size_t Size() const noexcept { return lu_.Rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int swap_parity_ = 1;
};

/// One-shot solve A x = b.
std::vector<double> SolveDense(const Matrix& a, const std::vector<double>& b);

/// Stationary distribution of a CTMC with generator Q (rows sum to 0):
/// solves pi Q = 0 with sum(pi) = 1 by replacing one column of Q^T with
/// ones.  `q` must be square.  Throws for non-square or singular systems
/// (e.g. reducible chains).
std::vector<double> StationaryFromGenerator(const Matrix& q);

/// Stationary distribution of a DTMC with transition matrix P (rows sum
/// to 1): solves pi (P - I) = 0 with sum(pi) = 1.
std::vector<double> StationaryFromStochastic(const Matrix& p);

}  // namespace wsn::linalg
