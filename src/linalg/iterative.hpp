// Iterative stationary-vector solvers for large sparse chains.
//
// For a CTMC generator Q, the stationary vector satisfies pi Q = 0.  We use
// the uniformized power method (pi P, P = I + Q/Lambda) and Gauss–Seidel
// sweeps on the transposed system; both only need ApplyTransposed, so CSR
// storage of Q is enough.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace wsn::linalg {

struct IterativeOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-12;     // infinity-norm change between sweeps
  double relaxation = 1.0;      // SOR factor for Gauss-Seidel (1 = plain GS)
};

struct IterativeResult {
  std::vector<double> solution;
  std::size_t iterations = 0;
  double residual = 0.0;  // final change norm
  bool converged = false;
};

/// Power iteration on the uniformized chain P = I + Q / Lambda where
/// Lambda > max_i |Q(i,i)|.  Converges for ergodic chains.
IterativeResult StationaryPowerMethod(const CsrMatrix& q,
                                      const IterativeOptions& opts = {});

/// Gauss–Seidel (optionally SOR) on pi Q = 0 with normalization after each
/// sweep.  Typically far fewer iterations than the power method.
IterativeResult StationaryGaussSeidel(const CsrMatrix& q,
                                      const IterativeOptions& opts = {});

}  // namespace wsn::linalg
