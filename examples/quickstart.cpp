// Quickstart: evaluate the paper's CPU with all three models at one
// parameter point and print state shares, energy and latency.
//
//   ./quickstart [--lambda 1] [--service-time 0.1] [--pdt 0.1]
//                [--pud 0.001] [--sim-time 1000] [--replications 16]
#include <iostream>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);

  core::CpuParams params;
  params.arrival_rate = args.GetDouble("lambda", 1.0);
  params.service_rate = 1.0 / args.GetDouble("service-time", 0.1);
  params.power_down_threshold = args.GetDouble("pdt", 0.1);
  params.power_up_delay = args.GetDouble("pud", 0.001);

  core::EvalConfig cfg;
  cfg.sim_time = args.GetDouble("sim-time", 1000.0);
  cfg.replications = static_cast<std::size_t>(args.GetInt("replications", 16));

  std::cout << "CPU energy model quickstart\n"
            << "  lambda = " << params.arrival_rate << " jobs/s, mean service "
            << params.MeanServiceTime() << " s (rho = " << params.Rho()
            << ")\n  Power Down Threshold = " << params.power_down_threshold
            << " s, Power Up Delay = " << params.power_up_delay << " s\n\n";

  const auto pxa = energy::Pxa271();
  util::TextTable out({"model", "standby%", "powerup%", "idle%", "active%",
                       "energy(J/1000s)", "mean latency(s)"});
  for (const auto& model : core::MakePaperModels(cfg)) {
    const core::ModelEvaluation eval = model->Evaluate(params);
    out.AddRow({model->Name(), util::FormatFixed(eval.shares.standby * 100, 2),
                util::FormatFixed(eval.shares.powerup * 100, 2),
                util::FormatFixed(eval.shares.idle * 100, 2),
                util::FormatFixed(eval.shares.active * 100, 2),
                util::FormatFixed(core::EnergyJoules(eval, pxa, 1000.0), 2),
                util::FormatFixed(eval.mean_latency, 4)});
  }
  std::cout << out.Render();
  std::cout << "\nPower table: " << pxa.name << " (standby " << pxa.standby_mw
            << " mW, idle " << pxa.idle_mw << " mW, powerup "
            << pxa.powerup_mw << " mW, active " << pxa.active_mw << " mW)\n";
  return 0;
}
