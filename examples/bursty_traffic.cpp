// Burstiness study: the paper's models assume Poisson arrivals, but WSN
// traffic is often event-triggered and bursty.  This example keeps the
// mean arrival rate fixed and varies the arrival process (Poisson, MMPP
// quiet/storm phases, batch renewals), simulating the same CPU to show
// how burstiness shifts the energy/latency picture — and why the open
// workload generator is a first-class part of the model.
//
//   ./bursty_traffic [--rate 1.0] [--pdt 0.1] [--pud 0.05] [--sim-time 20000]
#include <iostream>
#include <memory>

#include "des/bursty_workload.hpp"
#include "des/cpu_model.hpp"
#include "energy/energy_model.hpp"
#include "energy/power_state.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  const double rate = args.GetDouble("rate", 1.0);

  des::CpuModelConfig cfg;
  cfg.arrival_rate = rate;
  cfg.mean_service_time = 0.1;
  cfg.power_down_threshold = args.GetDouble("pdt", 0.1);
  cfg.power_up_delay = args.GetDouble("pud", 0.05);
  cfg.sim_time = args.GetDouble("sim-time", 20000.0);

  struct Scenario {
    std::string label;
    std::unique_ptr<des::Workload> workload;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"poisson", des::MakePoissonWorkload(rate)});
  // Quiet/storm MMPP with the same long-run rate: equal dwell in phases
  // at rate/5 and 9*rate/5 (mean = rate).
  scenarios.push_back(
      {"mmpp quiet/storm",
       std::make_unique<des::MmppWorkload>(
           std::vector<double>{rate / 5.0, 9.0 * rate / 5.0},
           std::vector<std::vector<double>>{{-0.05, 0.05}, {0.05, -0.05}})});
  // Batches of 4 at a quarter of the renewal rate.
  scenarios.push_back(
      {"batch x4", std::make_unique<des::BatchRenewalWorkload>(
                       util::Distribution(util::Exponential{rate / 4.0}), 4)});

  const auto pxa = energy::Pxa271();
  std::cout << "Burstiness study: mean rate " << rate << " jobs/s, PDT = "
            << cfg.power_down_threshold << " s, PUD = " << cfg.power_up_delay
            << " s, horizon " << cfg.sim_time << " s\n\n";

  util::TextTable out({"workload", "standby%", "idle%", "active%",
                       "energy(J/1000s)", "mean latency(s)", "jobs done"});
  for (auto& scenario : scenarios) {
    des::CpuSimulation sim(cfg, 42, std::move(scenario.workload));
    const des::CpuRunResult r = sim.Run();
    const double energy_per_1000s =
        energy::EnergyFromTimesJoules(r.time_standby, r.time_powerup,
                                      r.time_idle, r.time_active, pxa) /
        cfg.sim_time * 1000.0;
    out.AddRow({scenario.label,
                util::FormatFixed(r.FractionStandby() * 100.0, 2),
                util::FormatFixed(r.FractionIdle() * 100.0, 2),
                util::FormatFixed(r.FractionActive() * 100.0, 2),
                util::FormatFixed(energy_per_1000s, 2),
                util::FormatFixed(r.latency.Mean(), 4),
                std::to_string(r.jobs_completed)});
  }
  std::cout << out.Render();
  std::cout << "\nReading: bursty arrivals concentrate work, so the CPU "
               "sleeps more (lower energy) but queues deeper (higher "
               "latency) — the power-management sweet spot moves with the "
               "traffic shape, which is why the model library exposes the "
               "workload generator as a first-class component.\n";
  return 0;
}
