// End-to-end tour of the packet-level network simulator: a 50-node grid
// reporting to a corner sink under bursty (MMPP quiet/storm) traffic,
// with small batteries so the run exhibits the full arc — node deaths,
// re-routing around dead relays, and finally partition.
//
//   ./netsim_demo [--cols 10] [--rows 5] [--spacing 15] [--hop 40]
//                 [--replications 8] [--seed 2008] [--horizon 4000]
//                 [--battery-mah 0.05] [--steady]
#include <cmath>
#include <iostream>

#include "core/models.hpp"
#include "des/bursty_workload.hpp"
#include "netsim/replication.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);

  netsim::NetSimConfig cfg;
  cfg.network.node.cpu.arrival_rate = args.GetDouble("rate", 2.0);
  cfg.network.node.cpu.service_rate = 10.0 * cfg.network.node.cpu.arrival_rate;
  cfg.network.node.cpu_power = energy::Msp430();
  cfg.network.node.sample_bits = 1024;
  cfg.network.node.listen_duty_cycle = 0.01;
  cfg.network.node.battery_mah = args.GetDouble("battery-mah", 0.05);
  cfg.network.sink = {0.0, 0.0};
  cfg.network.max_hop_m = args.GetDouble("hop", 40.0);
  cfg.positions =
      node::MakeGrid(static_cast<std::size_t>(args.GetInt("cols", 10)),
                     static_cast<std::size_t>(args.GetInt("rows", 5)),
                     args.GetDouble("spacing", 15.0));
  cfg.horizon_s = args.GetDouble("horizon", 4000.0);
  cfg.stop_at_partition = true;  // measure the connected phase
  cfg.timeline_interval_s = cfg.horizon_s / 20.0;

  if (!args.GetBool("steady")) {
    // Event-storm traffic: mostly quiet at 20% of the nominal rate, with
    // occasional bursts at 10x (long-run mean close to the nominal rate).
    const double rate = cfg.network.node.cpu.arrival_rate;
    cfg.traffic_factory = [rate](std::size_t) {
      return std::make_unique<des::MmppWorkload>(
          std::vector<double>{0.2 * rate, 10.0 * rate},
          std::vector<std::vector<double>>{{-0.02, 0.02}, {0.2, -0.2}});
    };
  }

  netsim::ReplicationConfig rep;
  rep.replications =
      static_cast<std::size_t>(args.GetInt("replications", 8));
  rep.seed = static_cast<std::uint64_t>(args.GetInt("seed", 2008));
  rep.keep_reports = true;

  const core::MarkovCpuModel model;
  const netsim::ReplicationSummary summary =
      RunReplications(cfg, model, rep);

  std::cout << "netsim demo: " << cfg.positions.size() << " nodes, "
            << (args.GetBool("steady") ? "steady Poisson" : "bursty MMPP")
            << " traffic, " << rep.replications << " replications, horizon "
            << cfg.horizon_s << " s\n\n";

  util::TextTable lifetimes({"metric", "mean +- 95% CI", "observed in"});
  lifetimes.AddRow(
      {"time to first death (s)",
       util::FormatInterval(summary.first_death_s.ci.mean,
                            summary.first_death_s.ci.half_width, 1),
       std::to_string(summary.first_death_s.observed) + "/" +
           std::to_string(summary.replications) + " reps"});
  lifetimes.AddRow(
      {"time to partition (s)",
       util::FormatInterval(summary.partition_s.ci.mean,
                            summary.partition_s.ci.half_width, 1),
       std::to_string(summary.partition_s.observed) + "/" +
           std::to_string(summary.replications) + " reps"});
  lifetimes.AddRow(
      {"delivery ratio",
       util::FormatInterval(summary.delivery_ratio.ci.mean,
                            summary.delivery_ratio.ci.half_width, 4),
       std::to_string(summary.replications) + "/" +
           std::to_string(summary.replications) + " reps"});
  lifetimes.AddRow(
      {"packets delivered",
       util::FormatInterval(summary.delivered.ci.mean,
                            summary.delivered.ci.half_width, 1),
       std::to_string(summary.replications) + "/" +
           std::to_string(summary.replications) + " reps"});
  std::cout << lifetimes.Render() << "\n";

  // Zoom into replication 0: the hot path near the sink dies first.
  const netsim::NetSimReport& rep0 = summary.reports.front();
  util::TextTable nodes({"node", "pos", "generated", "forwarded", "dropped",
                         "energy (J)", "death (s)"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < rep0.nodes.size() && shown < 10; ++i) {
    const netsim::NodeSimStats& n = rep0.nodes[i];
    if (n.alive && shown >= 5) continue;  // highlight the casualties
    ++shown;
    nodes.AddRow({std::to_string(i),
                  "(" + util::FormatFixed(cfg.positions[i].x, 0) + "," +
                      util::FormatFixed(cfg.positions[i].y, 0) + ")",
                  std::to_string(n.generated), std::to_string(n.forwarded),
                  std::to_string(n.dropped),
                  util::FormatFixed(n.energy_used_j, 3),
                  std::isfinite(n.death_s) ? util::FormatFixed(n.death_s, 1)
                                           : std::string("alive")});
  }
  std::cout << "replication 0, first " << shown << " nodes (dead first):\n"
            << nodes.Render() << "\n";

  util::TextTable drops({"drop reason", "packets (rep 0)"});
  for (std::size_t r = 0; r < netsim::kDropReasonCount; ++r) {
    const auto reason = static_cast<netsim::DropReason>(r);
    drops.AddRow({netsim::DropReasonName(reason),
                  std::to_string(rep0.packets.Dropped(reason))});
  }
  std::cout << drops.Render();
  std::cout << "\nreplication 0: generated " << rep0.packets.generated
            << ", delivered " << rep0.packets.delivered << ", first death at "
            << util::FormatFixed(rep0.first_death_s, 1)
            << " s (node " << rep0.first_dead_node << "), partition at "
            << (std::isfinite(rep0.partition_s)
                    ? util::FormatFixed(rep0.partition_s, 1) + " s"
                    : std::string("never"))
            << ", " << rep0.events << " events\n";
  return 0;
}
