// Thin shim: packet-level network lifetime study via the scenario engine.
// Equivalent to `wsnctl run netsim-lifetime`; see
// src/scenario/scenarios_netsim.cpp.
//
//   ./netsim_demo [--cols 10] [--rows 5] [--spacing 15] [--hop 40]
//                 [--replications 8] [--seed 2008] [--horizon 4000]
//                 [--battery-mah 0.05] [--steady]
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("netsim-lifetime", argc, argv);
}
