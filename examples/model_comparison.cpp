// Thin shim: six-method model comparison via the scenario engine.
// Equivalent to `wsnctl run model-comparison`; see
// src/scenario/scenarios_explore.cpp.
//
//   ./model_comparison [--pud 0.3] [--points 6] [--sim-time 2000]
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("model-comparison", argc, argv);
}
