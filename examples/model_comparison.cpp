// Model comparison across the paper's full parameter plane: sweeps the
// Power Down Threshold for a chosen Power Up Delay, printing the three
// models side by side plus the extended solvers (stages CTMC, PN
// numerical solver) that this library adds beyond the paper.
//
//   ./model_comparison [--pud 0.3] [--points 6] [--sim-time 2000]
#include <iostream>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);

  core::CpuParams base;
  base.power_up_delay = args.GetDouble("pud", 0.3);

  core::EvalConfig cfg;
  cfg.sim_time = args.GetDouble("sim-time", 2000.0);
  cfg.replications = static_cast<std::size_t>(args.GetInt("replications", 16));

  const auto grid =
      core::PaperPdtGrid(static_cast<std::size_t>(args.GetInt("points", 6)));
  const auto pxa = energy::Pxa271();

  const core::SimulationCpuModel sim(cfg);
  const core::MarkovCpuModel markov;
  const core::PetriNetCpuModel pn(cfg);
  const core::StagesMarkovCpuModel stages(20);
  const core::PetriSolverCpuModel solver(20);
  const core::DspnExactCpuModel exact;

  std::cout << "Idle-share comparison at PUD = " << base.power_up_delay
            << " s (six evaluation methods)\n\n";
  util::TextTable out({"PDT(s)", "DES sim", "supp.var Markov",
                       "PN token game", "stages CTMC k=20",
                       "PN solver k=20", "DSPN exact"});
  for (double pdt : grid) {
    core::CpuParams p = base;
    p.power_down_threshold = pdt;
    out.AddNumericRow(std::vector<double>{pdt, sim.Evaluate(p).shares.idle,
                                   markov.Evaluate(p).shares.idle,
                                   pn.Evaluate(p).shares.idle,
                                   stages.Evaluate(p).shares.idle,
                                   solver.Evaluate(p).shares.idle,
                                   exact.Evaluate(p).shares.idle},
               4);
  }
  std::cout << out.Render();

  std::cout << "\nEnergy (J / 1000 s) at PDT = 0.5 s:\n";
  core::CpuParams p = base;
  p.power_down_threshold = 0.5;
  util::TextTable etab({"model", "energy(J)"});
  const core::CpuEnergyModel* models[] = {&sim, &markov, &pn, &stages,
                                          &solver, &exact};
  for (const auto* model : models) {
    etab.AddRow({model->Name(),
                 util::FormatFixed(
                     core::EnergyJoules(model->Evaluate(p), pxa, 1000.0), 3)});
  }
  std::cout << etab.Render();
  return 0;
}
