// Thin shim: power-management design exploration via the scenario engine.
// Equivalent to `wsnctl run duty-cycle`; see
// src/scenario/scenarios_explore.cpp.
//
//   ./duty_cycle_explorer [--lambda 0.2] [--pud 0.05] [--points 13]
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("duty-cycle", argc, argv);
}
