// Power-management design exploration: for a given workload, sweep the
// Power Down Threshold and report the energy/latency trade-off — the
// design question the paper's models exist to answer.  Uses the fast
// closed-form Markov model for the sweep and cross-checks the chosen
// operating point against the Petri net.
//
//   ./duty_cycle_explorer [--lambda 0.2] [--pud 0.05] [--points 13]
#include <iostream>

#include "core/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);

  core::CpuParams params;
  params.arrival_rate = args.GetDouble("lambda", 0.2);
  params.service_rate = 10.0;
  params.power_up_delay = args.GetDouble("pud", 0.05);

  const auto pxa = energy::Pxa271();
  const core::MarkovCpuModel markov;
  const std::size_t points =
      static_cast<std::size_t>(args.GetInt("points", 13));

  std::cout << "Duty-cycle exploration: lambda = " << params.arrival_rate
            << "/s, PUD = " << params.power_up_delay << " s\n"
            << "Trade-off: small PDT saves energy but adds wake-up latency; "
               "large PDT burns idle power.\n\n";

  util::TextTable out({"PDT(s)", "energy(J/1000s)", "mean latency(s)",
                       "standby%", "idle%"});
  double best_pdt = 0.0;
  double best_cost = 1e300;
  for (std::size_t i = 0; i < points; ++i) {
    const double pdt =
        3.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    core::CpuParams p = params;
    p.power_down_threshold = pdt;
    const auto eval = markov.Evaluate(p);
    const double energy = core::EnergyJoules(eval, pxa, 1000.0);
    out.AddNumericRow(std::vector<double>{pdt, energy, eval.mean_latency,
                                   eval.shares.standby * 100.0,
                                   eval.shares.idle * 100.0},
               3);
    // Simple scalarized objective: energy plus a latency penalty.
    const double cost = energy + 200.0 * eval.mean_latency;
    if (cost < best_cost) {
      best_cost = cost;
      best_pdt = pdt;
    }
  }
  std::cout << out.Render();

  std::cout << "\nChosen operating point (min energy + 200 J/s x latency): "
            << "PDT = " << util::FormatFixed(best_pdt, 3) << " s\n";

  // Cross-check the chosen point with the Petri net (the paper's point:
  // trust the PN when deterministic delays matter).
  core::EvalConfig cfg;
  cfg.sim_time = 2000.0;
  cfg.replications = 12;
  const core::PetriNetCpuModel pn(cfg);
  core::CpuParams chosen = params;
  chosen.power_down_threshold = best_pdt;
  const auto via_markov = markov.Evaluate(chosen);
  const auto via_pn = pn.Evaluate(chosen);
  std::cout << "Cross-check at chosen point:  markov energy = "
            << util::FormatFixed(core::EnergyJoules(via_markov, pxa, 1000.0), 2)
            << " J,  petri-net energy = "
            << util::FormatFixed(core::EnergyJoules(via_pn, pxa, 1000.0), 2)
            << " J\n";
  return 0;
}
