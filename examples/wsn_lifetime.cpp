// WSN application (the paper's motivating scenario): estimate sensor-node
// and network lifetime with the CPU energy predicted by the paper's
// Markov model, for a grid deployment reporting to a corner sink.
//
//   ./wsn_lifetime [--cols 4] [--rows 4] [--spacing 30] [--rate 0.5]
//                  [--cpu pxa271|msp430|atmega]
#include <iostream>

#include "core/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "wsn/network.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);

  node::NetworkConfig cfg;
  cfg.node.cpu.arrival_rate = args.GetDouble("rate", 0.5);  // samples/s
  cfg.node.cpu.service_rate = 10.0;
  cfg.node.cpu.power_down_threshold = 0.1;
  cfg.node.cpu.power_up_delay = 0.001;
  const std::string cpu = args.GetString("cpu", "pxa271");
  cfg.node.cpu_power = cpu == "msp430" ? energy::Msp430()
                       : cpu == "atmega" ? energy::Atmega128L()
                                         : energy::Pxa271();
  cfg.node.sample_bits = 256;
  cfg.node.listen_duty_cycle = 0.01;
  cfg.node.battery_mah = 2500.0;
  cfg.sink = {0.0, 0.0};
  cfg.max_hop_m = args.GetDouble("hop", 50.0);

  const auto positions =
      node::MakeGrid(static_cast<std::size_t>(args.GetInt("cols", 4)),
                     static_cast<std::size_t>(args.GetInt("rows", 4)),
                     args.GetDouble("spacing", 30.0));
  const node::Network network(cfg, positions);

  const core::MarkovCpuModel cpu_model;
  const node::NetworkReport report = network.Evaluate(cpu_model);

  std::cout << "WSN lifetime estimation: " << positions.size()
            << " nodes, CPU " << cfg.node.cpu_power.name << ", "
            << cfg.node.cpu.arrival_rate << " samples/s\n\n";

  util::TextTable out({"node", "pos", "next-hop", "relay pkts/s",
                       "avg power (mW)", "lifetime (days)"});
  for (const node::NodeReport& n : report.nodes) {
    out.AddRow(
        {std::to_string(n.index),
         "(" + util::FormatFixed(positions[n.index].x, 0) + "," +
             util::FormatFixed(positions[n.index].y, 0) + ")",
         n.next_hop == n.index ? std::string("sink")
                               : std::to_string(n.next_hop),
         util::FormatFixed(n.relay_packets_per_second, 2),
         util::FormatFixed(n.average_power_mw, 3),
         util::FormatFixed(n.lifetime_seconds / 86400.0, 1)});
  }
  std::cout << out.Render();
  std::cout << "\nNetwork lifetime (first node death): "
            << util::FormatFixed(report.network_lifetime_seconds / 86400.0, 1)
            << " days (bottleneck: node " << report.bottleneck_node
            << ", the relay closest to the sink)\n";
  return 0;
}
