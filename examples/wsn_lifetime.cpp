// Thin shim: static WSN lifetime estimation via the scenario engine.
// Equivalent to `wsnctl run wsn-lifetime`; see
// src/scenario/scenarios_explore.cpp.
//
//   ./wsn_lifetime [--cols 4] [--rows 4] [--spacing 30] [--rate 0.5]
//                  [--cpu pxa271|msp430|atmega]
#include "scenario/run_main.hpp"

int main(int argc, char** argv) {
  return wsn::scenario::RunScenarioMain("wsn-lifetime", argc, argv);
}
