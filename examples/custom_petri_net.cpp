// Using the Petri-net library directly (beyond the paper's CPU model):
// build an M/M/1/K queueing net, analyze it structurally (invariants,
// reachability), solve it exactly, simulate it, and compare both against
// the textbook closed form.  Also exports the net as Graphviz DOT.
//
//   ./custom_petri_net [--lambda 0.8] [--mu 1.0] [--capacity 6] [--dot]
#include <iostream>

#include "markov/mm1.hpp"
#include "petri/ctmc_solver.hpp"
#include "petri/dot.hpp"
#include "petri/invariants.hpp"
#include "petri/reachability.hpp"
#include "petri/simulation.hpp"
#include "petri/standard_nets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wsn;
  const util::CliArgs args(argc, argv);
  const double lambda = args.GetDouble("lambda", 0.8);
  const double mu = args.GetDouble("mu", 1.0);
  const auto capacity =
      static_cast<std::uint32_t>(args.GetInt("capacity", 6));

  const petri::PetriNet net = petri::MakeMm1kNet(lambda, mu, capacity);
  std::cout << "M/M/1/" << capacity << " as a stochastic Petri net (lambda="
            << lambda << ", mu=" << mu << ")\n\n";

  if (args.GetBool("dot")) {
    std::cout << petri::ToDot(net, "mm1k") << "\n";
  }

  // Structural analysis.
  const petri::ReachabilityGraph rg = petri::ExploreReachability(net);
  std::cout << "Reachable markings: " << rg.Size()
            << " (bound = " << rg.MaxTokens() << " tokens)\n";
  const auto t_invs = petri::TransitionInvariants(net);
  std::cout << "T-invariants: " << t_invs.size()
            << " (arrive+serve cycles back to the same marking)\n\n";

  // Exact numerical solution vs token-game simulation vs closed form.
  const petri::SpnSteadyState exact = petri::SolveSteadyState(net);
  petri::SimulationConfig sim_cfg;
  sim_cfg.horizon = 20000.0;
  sim_cfg.warmup = 500.0;
  const petri::SimulationResult sim = petri::SimulateSpn(net, sim_cfg);
  const markov::Mm1k ref{lambda, mu, capacity};

  const auto queue = net.PlaceByName("queue");
  const auto serve = net.TransitionByName("serve");
  util::TextTable out({"metric", "closed form", "SPN solver", "SPN sim"});
  out.AddRow({"mean jobs", util::FormatFixed(ref.MeanJobs(), 4),
              util::FormatFixed(exact.mean_tokens[queue], 4),
              util::FormatFixed(sim.mean_tokens[queue], 4)});
  // Simulation utilization via flow balance: busy fraction = X_serve / mu.
  out.AddRow({"utilization", util::FormatFixed(ref.Utilization(), 4),
              util::FormatFixed(exact.prob_nonempty[queue], 4),
              util::FormatFixed(sim.throughput[serve] / mu, 4)});
  out.AddRow({"throughput", util::FormatFixed(ref.Throughput(), 4),
              util::FormatFixed(exact.throughput[serve], 4),
              util::FormatFixed(sim.throughput[serve], 4)});
  out.AddRow({"blocking prob",
              util::FormatFixed(ref.BlockingProbability(), 4),
              util::FormatFixed(1.0 - exact.throughput[serve] / lambda, 4),
              util::FormatFixed(1.0 - sim.throughput[serve] / lambda, 4)});
  std::cout << out.Render();
  std::cout << "\nThe solver column is exact (tangible reachability -> CTMC "
               "-> LU); the simulation column converges to it as the "
               "horizon grows.\n";
  return 0;
}
